"""Trainable parameter container for the manual-backprop NN substrate.

The FedCA reproduction does not use autograd: every layer computes its own
backward pass and *accumulates* gradients into :class:`Parameter.grad`.
Keeping the container minimal (two ndarrays and a name) keeps the hot path —
SGD updates over a handful of contiguous float32 buffers — allocation-free.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named, trainable tensor with an accumulated gradient buffer.

    Parameters
    ----------
    data:
        Initial value. Stored as a C-contiguous ``float32`` array; the
        federated substrate ships these buffers around, so a fixed dtype
        keeps byte accounting (link-transmission sizes) exact.
    name:
        Dotted path assigned by :meth:`repro.nn.module.Module.named_parameters`
        (e.g. ``"conv1.weight"``). Set lazily; layer code never needs it but
        the FedCA profiler addresses parameters by these names.
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Transmission size in bytes (float32 ⇒ 4 bytes per scalar)."""
        return int(self.data.nbytes)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient in place (no reallocation)."""
        self.grad[...] = 0.0

    def copy_data(self) -> np.ndarray:
        """Snapshot of the current value (used for round-start anchors)."""
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
