"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from .module import Module

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]


class MaxPool2d(Module):
    """Non-overlapping max pooling (``stride == kernel_size``).

    The forward reshapes ``(N, C, H, W)`` into pooling windows with a view
    (no copy) and records the argmax mask for the backward scatter.
    Inputs whose spatial dims are not multiples of the kernel are truncated,
    matching torch's floor-mode behaviour.
    """

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self._mask: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._trunc: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = x.shape
        th, tw = (h // k) * k, (w // k) * k
        self._x_shape = x.shape
        self._trunc = (th, tw)
        xt = x[:, :, :th, :tw]
        windows = xt.reshape(n, c, th // k, k, tw // k, k)
        out = windows.max(axis=(3, 5))
        # Mask marks, within each window, the positions equal to the max.
        # Ties propagate gradient to every maximal element; acceptable for
        # training and keeps the backward a pure broadcast.
        self._mask = windows == out[:, :, :, None, :, None]
        self._tie_counts = self._mask.sum(axis=(3, 5))
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = self._x_shape
        th, tw = self._trunc
        # Split gradient evenly among tied maxima so the pooled gradient sum
        # is conserved (an invariant the property tests check).
        g = grad_out / self._tie_counts
        grad_windows = self._mask * g[:, :, :, None, :, None]
        self._mask = None
        self._tie_counts = None
        grad = np.zeros(self._x_shape, dtype=grad_out.dtype)
        grad[:, :, :th, :tw] = grad_windows.reshape(n, c, th, tw)
        return grad


class AvgPool2d(Module):
    """Non-overlapping average pooling."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self._x_shape: tuple[int, ...] | None = None
        self._trunc: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = x.shape
        th, tw = (h // k) * k, (w // k) * k
        self._x_shape = x.shape
        self._trunc = (th, tw)
        windows = x[:, :, :th, :tw].reshape(n, c, th // k, k, tw // k, k)
        return windows.mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = self._x_shape
        th, tw = self._trunc
        g = grad_out / (k * k)
        grad = np.zeros(self._x_shape, dtype=grad_out.dtype)
        expanded = np.broadcast_to(
            g[:, :, :, None, :, None], (n, c, th // k, k, tw // k, k)
        )
        grad[:, :, :th, :tw] = expanded.reshape(n, c, th, tw)
        return grad


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, yielding ``(N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        g = grad_out / (h * w)
        return np.broadcast_to(g[:, :, None, None], self._x_shape).astype(
            grad_out.dtype
        ).copy()
