"""Model checkpointing: save/load parameters and buffers as ``.npz``.

The federated simulator is in-process, but users reproducing long runs want
to checkpoint the global model between experiment phases (e.g. advance a
FedAvg environment to round 200, save, then probe curves offline).
Parameters and buffers share one archive, disambiguated by a prefix, so a
checkpoint is a single file per model.

Besides the ``.npz`` codec this module ships the *arena* codec used by the
shared-memory IPC transport (:mod:`repro.runtime.transport`): a state dict
is laid out into any writable buffer as a versioned header + per-layer
offset table + 64-byte-aligned raw array payload, so readers in other
processes can map the arrays zero-copy instead of unpickling them. The
header is a JSON skeleton (mirroring the ``.npz`` archive's name/dtype/
shape bookkeeping) and preserves dict insertion order, which the broadcast
determinism guarantee relies on.
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path

import numpy as np

from .module import Module

__all__ = [
    "CheckpointFormatError",
    "save_model",
    "load_model",
    "state_to_bytes",
    "state_from_bytes",
    "packed_state_nbytes",
    "pack_state",
    "unpack_state",
    "arena_entries",
    "ARENA_MAGIC",
    "ARENA_VERSION",
]

_PARAM_PREFIX = "param::"
_BUFFER_PREFIX = "buffer::"

#: Arena block framing: magic(8) + version(u32) + header_len(u32).
ARENA_MAGIC = b"RPRARENA"
ARENA_VERSION = 1
_ARENA_PREAMBLE = struct.Struct("<8sII")
_ARENA_ALIGN = 64


def _align_up(n: int, align: int = _ARENA_ALIGN) -> int:
    return (n + align - 1) & ~(align - 1)


class CheckpointFormatError(ValueError):
    """A checkpoint does not match the target model (missing/extra layers,
    shape or dtype mismatch) or is structurally invalid.

    Subclasses :class:`ValueError` so legacy ``except ValueError`` callers
    keep working; the run-persistence subsystem (:mod:`repro.persist`)
    re-exports it as the base of its typed error hierarchy.
    """


def _validate_arrays(
    kind: str,
    expected: dict[str, np.ndarray],
    loaded: dict[str, np.ndarray],
) -> None:
    """Reject any name/shape/dtype divergence before touching model state.

    ``np.savez`` round-trips preserve dtype, but checkpoints written by
    other tools (or edited archives) may not — and ``load_state_dict``
    would silently cast them to float32, or numpy would raise an opaque
    broadcast error on a shape mismatch. Fail loudly and typed instead.
    """
    missing = expected.keys() - loaded.keys()
    extra = loaded.keys() - expected.keys()
    if missing or extra:
        raise CheckpointFormatError(
            f"{kind} mismatch: missing={sorted(missing)} extra={sorted(extra)}"
        )
    for name, ref in expected.items():
        arr = loaded[name]
        if arr.shape != ref.shape:
            raise CheckpointFormatError(
                f"{kind} {name!r}: checkpoint shape {arr.shape} does not "
                f"match model shape {ref.shape}"
            )
        if arr.dtype != ref.dtype:
            raise CheckpointFormatError(
                f"{kind} {name!r}: checkpoint dtype {arr.dtype} does not "
                f"match model dtype {ref.dtype} (refusing a silent cast)"
            )


def save_model(model: Module, path: str | Path) -> None:
    """Write the model's parameters and buffers to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[_PARAM_PREFIX + name] = value
    for name, value in model.buffer_dict().items():
        arrays[_BUFFER_PREFIX + name] = value
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)


def load_model(model: Module, path: str | Path) -> None:
    """Load a checkpoint written by :func:`save_model` into ``model``.

    The checkpoint must match the model exactly (same layers, same shapes,
    same dtypes); a partial or silently-cast load would corrupt federated
    state. Any divergence raises :class:`CheckpointFormatError`.
    """
    with np.load(path) as archive:
        params = {
            name[len(_PARAM_PREFIX):]: archive[name]
            for name in archive.files
            if name.startswith(_PARAM_PREFIX)
        }
        buffers = {
            name[len(_BUFFER_PREFIX):]: archive[name]
            for name in archive.files
            if name.startswith(_BUFFER_PREFIX)
        }
    _validate_arrays(
        "parameter", {n: p.data for n, p in model.named_parameters()}, params
    )
    model.load_state_dict(params)
    if buffers or model.buffer_dict():
        _validate_arrays("buffer", dict(model.named_buffers()), buffers)
        model.load_buffer_dict(buffers)


def state_to_bytes(state: dict[str, np.ndarray]) -> bytes:
    """Serialise a plain state dict (e.g. the simulator's global state)."""
    buf = io.BytesIO()
    np.savez(buf, **state)
    return buf.getvalue()


def state_from_bytes(blob: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`state_to_bytes`."""
    with np.load(io.BytesIO(blob)) as archive:
        return {name: archive[name] for name in archive.files}


# ----------------------------------------------------------------------
# Arena codec (zero-copy shared-memory layout).
#
# Block layout, all offsets relative to the block start:
#
#   [magic 8B][version u32][header_len u32][header JSON]
#   ...padding to 64B...
#   [array 0, 64B-aligned][array 1, 64B-aligned]...
#
# The header is ``[[name, dtype_str, shape, offset, nbytes], ...]`` in the
# state dict's insertion order; each ``offset`` points at that array's
# payload within the block.
# ----------------------------------------------------------------------


def _arena_plan(
    state: dict[str, np.ndarray],
) -> tuple[bytes, list[tuple[str, np.dtype, tuple[int, ...], int, int]], int]:
    """Compute the header bytes, per-array placements and total block size."""
    entries = []
    for name, arr in state.items():
        arr = np.asarray(arr)
        entries.append((name, arr.dtype, arr.shape, int(arr.nbytes)))
    # Two passes: header length depends on the offsets, but offsets only
    # depend on the header length. Compute with zeroed offsets first, then
    # pad the header field to a stable length so the real offsets fit.
    skeleton = [
        [name, dtype.str, list(shape), 0, nbytes]
        for name, dtype, shape, nbytes in entries
    ]
    header_guess = json.dumps(skeleton).encode()
    # Offsets are rendered as plain ints; reserve room for them growing the
    # JSON (12 digits covers terabyte-scale arenas).
    header_len = len(header_guess) + 12 * len(entries)
    cursor = _align_up(_ARENA_PREAMBLE.size + header_len)
    placed = []
    for name, dtype, shape, nbytes in entries:
        placed.append((name, dtype, shape, cursor, nbytes))
        cursor = _align_up(cursor + nbytes)
    header = json.dumps(
        [[n, d.str, list(s), off, nb] for n, d, s, off, nb in placed]
    ).encode()
    header = header.ljust(header_len, b" ")
    return header, placed, cursor


def packed_state_nbytes(state: dict[str, np.ndarray]) -> int:
    """Total bytes :func:`pack_state` writes for ``state`` (header included)."""
    _, _, total = _arena_plan(state)
    return total


def pack_state(
    buf, state: dict[str, np.ndarray], offset: int = 0
) -> int:
    """Write ``state`` into ``buf`` (any writable buffer) at ``offset``.

    Returns the number of bytes written. One memcpy per array — no
    serialization; readers in other processes recover the arrays with
    :func:`unpack_state`, zero-copy if they want to.
    """
    header, placed, total = _arena_plan(state)
    mv = memoryview(buf)
    if offset + total > len(mv):
        raise ValueError(
            f"state needs {total} bytes at offset {offset}, "
            f"buffer holds {len(mv)}"
        )
    _ARENA_PREAMBLE.pack_into(mv, offset, ARENA_MAGIC, ARENA_VERSION, len(header))
    mv[offset + _ARENA_PREAMBLE.size : offset + _ARENA_PREAMBLE.size + len(header)] = (
        header
    )
    for name, dtype, shape, aoff, nbytes in placed:
        if nbytes == 0:
            continue
        dst = np.ndarray(shape, dtype=dtype, buffer=mv, offset=offset + aoff)
        np.copyto(dst, np.asarray(state[name]))
        del dst  # release the exported buffer so the arena can be unmapped
    return total


def arena_entries(
    buf, offset: int = 0
) -> list[tuple[str, str, tuple[int, ...], int, int]]:
    """Parse just the header of a :func:`pack_state` block.

    Returns ``[(name, dtype_str, shape, payload_offset, nbytes), ...]``
    in packed (insertion) order, with ``payload_offset`` absolute within
    ``buf``. No array payload is touched — this is how the sharded
    aggregation engine validates key sets and locates flat parameter
    slices without copying a single tensor.
    """
    mv = memoryview(buf)
    try:
        magic, version, header_len = _ARENA_PREAMBLE.unpack_from(mv, offset)
    except struct.error as exc:
        raise CheckpointFormatError(f"truncated arena block: {exc}") from exc
    if magic != ARENA_MAGIC:
        raise CheckpointFormatError(
            f"bad arena magic {magic!r} (expected {ARENA_MAGIC!r})"
        )
    if version != ARENA_VERSION:
        raise CheckpointFormatError(
            f"arena version {version} not supported (expected {ARENA_VERSION})"
        )
    hstart = offset + _ARENA_PREAMBLE.size
    try:
        raw = json.loads(bytes(mv[hstart : hstart + header_len]))
    except ValueError as exc:
        raise CheckpointFormatError(f"corrupt arena header: {exc}") from exc
    entries = []
    for name, dtype_str, shape, aoff, nbytes in raw:
        if offset + aoff + nbytes > len(mv):
            raise CheckpointFormatError(
                f"truncated arena block: array {name!r} needs "
                f"{nbytes} bytes at offset {offset + aoff}, buffer holds {len(mv)}"
            )
        entries.append((name, dtype_str, tuple(shape), offset + aoff, nbytes))
    return entries


def unpack_state(
    buf, offset: int = 0, *, copy: bool = True
) -> dict[str, np.ndarray]:
    """Read a :func:`pack_state` block from ``buf`` at ``offset``.

    With ``copy=False`` the returned arrays are read-only views into
    ``buf`` — zero-copy, but only valid while the underlying mapping is
    alive and until the writer reuses the block. ``copy=True`` (default)
    detaches them.
    """
    mv = memoryview(buf)
    state: dict[str, np.ndarray] = {}
    for name, dtype_str, shape, aoff, _ in arena_entries(buf, offset):
        arr = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=mv, offset=aoff)
        if copy:
            state[name] = arr.copy()
            del arr
        else:
            arr.flags.writeable = False
            state[name] = arr
    return state
