"""Model checkpointing: save/load parameters and buffers as ``.npz``.

The federated simulator is in-process, but users reproducing long runs want
to checkpoint the global model between experiment phases (e.g. advance a
FedAvg environment to round 200, save, then probe curves offline).
Parameters and buffers share one archive, disambiguated by a prefix, so a
checkpoint is a single file per model.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .module import Module

__all__ = [
    "CheckpointFormatError",
    "save_model",
    "load_model",
    "state_to_bytes",
    "state_from_bytes",
]

_PARAM_PREFIX = "param::"
_BUFFER_PREFIX = "buffer::"


class CheckpointFormatError(ValueError):
    """A checkpoint does not match the target model (missing/extra layers,
    shape or dtype mismatch) or is structurally invalid.

    Subclasses :class:`ValueError` so legacy ``except ValueError`` callers
    keep working; the run-persistence subsystem (:mod:`repro.persist`)
    re-exports it as the base of its typed error hierarchy.
    """


def _validate_arrays(
    kind: str,
    expected: dict[str, np.ndarray],
    loaded: dict[str, np.ndarray],
) -> None:
    """Reject any name/shape/dtype divergence before touching model state.

    ``np.savez`` round-trips preserve dtype, but checkpoints written by
    other tools (or edited archives) may not — and ``load_state_dict``
    would silently cast them to float32, or numpy would raise an opaque
    broadcast error on a shape mismatch. Fail loudly and typed instead.
    """
    missing = expected.keys() - loaded.keys()
    extra = loaded.keys() - expected.keys()
    if missing or extra:
        raise CheckpointFormatError(
            f"{kind} mismatch: missing={sorted(missing)} extra={sorted(extra)}"
        )
    for name, ref in expected.items():
        arr = loaded[name]
        if arr.shape != ref.shape:
            raise CheckpointFormatError(
                f"{kind} {name!r}: checkpoint shape {arr.shape} does not "
                f"match model shape {ref.shape}"
            )
        if arr.dtype != ref.dtype:
            raise CheckpointFormatError(
                f"{kind} {name!r}: checkpoint dtype {arr.dtype} does not "
                f"match model dtype {ref.dtype} (refusing a silent cast)"
            )


def save_model(model: Module, path: str | Path) -> None:
    """Write the model's parameters and buffers to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[_PARAM_PREFIX + name] = value
    for name, value in model.buffer_dict().items():
        arrays[_BUFFER_PREFIX + name] = value
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)


def load_model(model: Module, path: str | Path) -> None:
    """Load a checkpoint written by :func:`save_model` into ``model``.

    The checkpoint must match the model exactly (same layers, same shapes,
    same dtypes); a partial or silently-cast load would corrupt federated
    state. Any divergence raises :class:`CheckpointFormatError`.
    """
    with np.load(path) as archive:
        params = {
            name[len(_PARAM_PREFIX):]: archive[name]
            for name in archive.files
            if name.startswith(_PARAM_PREFIX)
        }
        buffers = {
            name[len(_BUFFER_PREFIX):]: archive[name]
            for name in archive.files
            if name.startswith(_BUFFER_PREFIX)
        }
    _validate_arrays(
        "parameter", {n: p.data for n, p in model.named_parameters()}, params
    )
    model.load_state_dict(params)
    if buffers or model.buffer_dict():
        _validate_arrays("buffer", dict(model.named_buffers()), buffers)
        model.load_buffer_dict(buffers)


def state_to_bytes(state: dict[str, np.ndarray]) -> bytes:
    """Serialise a plain state dict (e.g. the simulator's global state)."""
    buf = io.BytesIO()
    np.savez(buf, **state)
    return buf.getvalue()


def state_from_bytes(blob: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`state_to_bytes`."""
    with np.load(io.BytesIO(blob)) as archive:
        return {name: archive[name] for name in archive.files}
