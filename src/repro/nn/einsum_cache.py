"""Shared bounded cache of ``np.einsum_path`` contraction plans.

Planning a contraction path with ``optimize="optimal"`` is a search over
operand orderings — cheap once, wasteful per call, and previously each
:class:`~repro.nn.conv.Conv2d` instance memoised exactly one geometry and
re-planned whenever the batch or spatial size changed (while a long-lived
layer that cycled through distinct geometries grew a fresh plan each time
with nothing ever evicted). This module centralises planning behind a
small process-wide LRU keyed on ``(subscripts, operand shapes)``: the
serial conv layer, the server-side stacked-update aggregation and the
cohort executor's batched plans all share it, so any geometry seen by any
consumer is planned exactly once until evicted.

The cache stores only *paths* (tiny lists of tuples), never operands, and
a path is a pure function of the key — eviction can change speed, never
results.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock

import numpy as np

__all__ = ["einsum_path_for", "planned_einsum", "path_cache_info", "clear_path_cache"]

#: Distinct (subscripts, shapes) plans kept; beyond this the least recently
#: used plan is dropped. 64 comfortably covers every layer geometry of the
#: shipped workloads at several batch sizes.
_MAX_PLANS = 64

_lock = Lock()  # reprolint: allow[FORK001] held only for O(us) dict ops on the calling thread; the pool-forking thread never holds it, so children can never inherit it locked
_plans: "OrderedDict[tuple, list]" = OrderedDict()
_hits = 0
_misses = 0


def einsum_path_for(subscripts: str, *shapes: tuple[int, ...]) -> list:
    """Contraction path for ``np.einsum(subscripts, ...)`` over operands of
    the given shapes, planned once per distinct key and LRU-cached."""
    global _hits, _misses
    key = (subscripts, shapes)
    with _lock:
        path = _plans.get(key)
        if path is not None:
            _plans.move_to_end(key)
            _hits += 1
            return path
        _misses += 1
    # Plan outside the lock: np.einsum_path only needs shape carriers, and a
    # rare duplicate plan for the same key is harmless (identical result).
    operands = [np.broadcast_to(np.empty((), dtype=np.float64), s) for s in shapes]
    path = np.einsum_path(subscripts, *operands, optimize="optimal")[0]
    with _lock:
        _plans[key] = path
        _plans.move_to_end(key)
        while len(_plans) > _MAX_PLANS:
            _plans.popitem(last=False)
    return path


def planned_einsum(subscripts: str, *operands: np.ndarray) -> np.ndarray:
    """``np.einsum`` with the path resolved through the shared LRU cache."""
    path = einsum_path_for(subscripts, *(op.shape for op in operands))
    return np.einsum(subscripts, *operands, optimize=path)


def path_cache_info() -> dict[str, int]:
    """Cache statistics (size/capacity/hits/misses) for tests and benches."""
    with _lock:
        return {
            "size": len(_plans),
            "max_size": _MAX_PLANS,
            "hits": _hits,
            "misses": _misses,
        }


def clear_path_cache() -> None:
    """Drop every cached plan and reset the statistics (test isolation)."""
    global _hits, _misses
    with _lock:
        _plans.clear()
        _hits = 0
        _misses = 0
