"""Dense layers, activations, dropout and the Sequential container."""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module
from .parameter import Parameter

__all__ = ["Linear", "ReLU", "Tanh", "Flatten", "Dropout", "Sequential", "Identity"]


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` with torch-compatible naming.

    ``weight`` has shape ``(out_features, in_features)`` so dotted names like
    ``fc2.weight`` match the layer names quoted in the paper's figures.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), in_features, rng)
        )
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._x
        if x is None:
            raise RuntimeError("Linear.backward called before forward")
        self._x = None
        self.weight.grad += grad_out.T @ x
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.relu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x, self._x = self._x, None
        return F.relu_grad(x, grad_out)


class Tanh(Module):
    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        out, self._out = self._out, None
        return grad_out * (1.0 - out**2)


class Flatten(Module):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    The mask RNG is local to the layer so that two clients training the same
    architecture do not share dropout randomness unless explicitly seeded.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        mask, self._mask = self._mask, None
        if mask is None:
            return grad_out
        return grad_out * mask


class Identity(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Sequential(Module):
    """Ordered chain of modules; backward replays the chain in reverse."""

    def __init__(self, *modules: Module, names: list[str] | None = None) -> None:
        super().__init__()
        if names is not None and len(names) != len(modules):
            raise ValueError("names must match modules one-to-one")
        self._order: list[str] = []
        for idx, module in enumerate(modules):
            name = names[idx] if names is not None else str(idx)
            setattr(self, name, module)
            self._order.append(name)

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self:
            x = module(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for name in reversed(self._order):
            grad_out = getattr(self, name).backward(grad_out)
        return grad_out
