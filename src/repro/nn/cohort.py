"""Batched "cohort" tensor programs: M same-architecture clients as one model.

The serial executor trains each client's model replica one at a time — for
the paper's regime (small CNN/LSTM models × many selected clients per
round) that spends most of its time in per-call numpy overhead rather than
arithmetic. This module restacks the problem: every parameter, gradient and
optimizer slot of M clients is stored along a leading *client axis* ``C``,
and each layer's forward/backward folds that axis into its contractions so
one batched BLAS call (``np.matmul`` over the leading axis) advances all M
clients per layer per step.

Implementation notes
--------------------
* Contractions use broadcast-batched ``np.matmul`` rather than folded
  ``einsum`` subscripts (``"fk,nkl->nfl"`` → ``"cfk,cnkl->cnfl"``): on this
  substrate a planned batched einsum runs 2–5× slower than ``matmul``
  because numpy's einsum cannot dispatch batch contractions to BLAS. The
  handful of einsums the cohort path does retain (masked per-member loss
  reductions) go through the shared plan LRU in
  :mod:`repro.nn.einsum_cache`, like the serial conv layer.
* Ragged batches are handled by padding to the widest member batch and
  masking: padded rows carry exactly-zero loss gradients, so they
  contribute zeros to every parameter gradient.
* Per-client early stopping (FedCA Eq. 2–4) and per-client iteration
  budgets (FedAda) drop members out of the cohort via the *active mask*
  passed to :meth:`CohortSGD.step` — a masked member's parameters are
  frozen bitwise (the whole step, including weight decay, is multiplied by
  the mask), and the caller stops drawing its batches so the member's data
  RNG stream stays exactly where a serial run would leave it.
* The serial executor remains the bitwise oracle. A cohort member's floats
  may differ from its serial twin at reduction-order level (different GEMM
  blocking), which is why equivalence is pinned to a documented tolerance
  (see ``tests/test_cohort.py`` and ``DESIGN.md`` §12) rather than bitwise.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .conv import Conv2d
from .einsum_cache import planned_einsum
from .layers import Dropout, Flatten, Identity, Linear, ReLU, Sequential, Tanh
from .module import Module
from .norm import GroupNorm2d
from .pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from .rnn import LSTM

__all__ = [
    "CohortUnsupportedModel",
    "CohortParameter",
    "CohortModel",
    "CohortSGD",
    "build_cohort_model",
    "cohort_supported",
    "cohort_softmax_cross_entropy",
]


class CohortUnsupportedModel(ValueError):
    """Raised when a model cannot be expressed as a batched cohort program
    (non-chain topology such as WideResNet's residual blocks, or a layer
    type without a batched twin such as BatchNorm2d's running statistics)."""


# ----------------------------------------------------------------------
# Parameters
# ----------------------------------------------------------------------
class CohortParameter:
    """One model parameter stacked for M clients: ``data``/``grad`` have
    shape ``(C, *param_shape)``."""

    __slots__ = ("name", "data", "grad")

    def __init__(self, name: str, cohort_size: int, shape: tuple[int, ...]) -> None:
        self.name = name
        self.data = np.zeros((cohort_size,) + shape, dtype=np.float32)
        self.grad = np.zeros_like(self.data)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


# ----------------------------------------------------------------------
# Layers — all operate on (C, N, ...) tensors
# ----------------------------------------------------------------------
class _CohortLayer:
    """Base: a stateless transform or a parametrised layer over ``(C, N, …)``."""

    #: When False (set on the chain's first layer), parametrised layers may
    #: skip computing the gradient w.r.t. their *input* — nothing consumes
    #: it. Parameter gradients are unaffected.
    compute_dx: bool = True

    def params(self) -> list[CohortParameter]:
        return []

    def bind_members(self, modules: list[Module]) -> None:
        """Attach the cohort members' serial layer instances (used only by
        layers that must consume per-member state, e.g. Dropout RNGs)."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, g: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError


class CLinear(_CohortLayer):
    """Batched affine map: ``y[c] = x[c] @ W[c].T + b[c]``."""

    def __init__(self, prefix: str, ref: Linear, cohort_size: int) -> None:
        self.weight = CohortParameter(
            f"{prefix}weight", cohort_size, ref.weight.data.shape
        )
        self.bias = (
            CohortParameter(f"{prefix}bias", cohort_size, ref.bias.data.shape)
            if ref.bias is not None
            else None
        )
        self._x: np.ndarray | None = None

    def params(self) -> list[CohortParameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = np.matmul(x, self.weight.data.transpose(0, 2, 1))
        if self.bias is not None:
            out += self.bias.data[:, None, :]
        return out

    def backward(self, g: np.ndarray) -> np.ndarray:
        x, self._x = self._x, None
        self.weight.grad += np.matmul(g.transpose(0, 2, 1), x)
        if self.bias is not None:
            self.bias.grad += g.sum(axis=1)
        if not self.compute_dx:
            return g  # first layer: input gradient has no consumer
        return np.matmul(g, self.weight.data)


class CConv2d(_CohortLayer):
    """Batched conv: the member axis folds into the im2col GEMMs.

    Input ``(C, N, ch, H, W)`` is flattened to ``(C·N, ch, H, W)`` for the
    (elementwise) im2col gather, then the filter bank contraction runs as
    one broadcast-batched matmul ``(C, 1, F, K) @ (C, N, K, L)``.
    """

    def __init__(self, prefix: str, ref: Conv2d, cohort_size: int) -> None:
        self.in_channels = ref.in_channels
        self.out_channels = ref.out_channels
        self.kernel_size = ref.kernel_size
        self.stride = ref.stride
        self.padding = ref.padding
        self.weight = CohortParameter(
            f"{prefix}weight", cohort_size, ref.weight.data.shape
        )
        self.bias = (
            CohortParameter(f"{prefix}bias", cohort_size, ref.bias.data.shape)
            if ref.bias is not None
            else None
        )
        self._indices = None
        self._geom: tuple[int, int] | None = None
        self._dx_indices = None
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def params(self) -> list[CohortParameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def _w_mat(self) -> np.ndarray:
        c = self.weight.data.shape[0]
        return self.weight.data.reshape(c, self.out_channels, -1)  # (C, F, K)

    def forward(self, x: np.ndarray) -> np.ndarray:
        c, n, ch, h, w = x.shape
        if ch != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {ch}")
        if self._geom != (h, w):
            self._indices = F.im2col_indices(
                ch, h, w, self.kernel_size, self.kernel_size,
                self.stride, self.padding,
            )
            self._dx_indices = None
            self._geom = (h, w)
        _, _, _, out_h, out_w = self._indices
        cols = F.im2col(x.reshape(c * n, ch, h, w), self._indices, self.padding)
        cols = cols.reshape(c, n, cols.shape[1], cols.shape[2])  # (C, N, K, L)
        self._cols = cols
        self._x_shape = x.shape
        # (C, 1, F, K) @ (C, N, K, L) -> (C, N, F, L): one batched GEMM for
        # the whole cohort.
        out = np.matmul(self._w_mat()[:, None], cols)
        if self.bias is not None:
            out += self.bias.data[:, None, :, None]
        return out.reshape(c, n, self.out_channels, out_h, out_w)

    def backward(self, g: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise RuntimeError("CConv2d.backward called before forward")
        cols = self._cols
        self._cols = None
        c, n = g.shape[0], g.shape[1]
        gf = g.reshape(c, n, self.out_channels, -1)  # (C, N, F, L)
        dw = np.matmul(gf, cols.transpose(0, 1, 3, 2)).sum(axis=1)  # (C, F, K)
        self.weight.grad += dw.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += gf.sum(axis=(1, 3))
        if not self.compute_dx:
            return g  # first layer: input gradient has no consumer
        cc, nn_, ch, h, w = self._x_shape
        if self.stride == 1 and self.padding <= self.kernel_size - 1:
            # dX as a *transposed convolution* — an im2col gather over the
            # output gradient contracted with the 180°-rotated filters. One
            # gather + one batched GEMM instead of the ``np.add.at`` scatter
            # of ``col2im``, which is an order of magnitude slower (python-
            # level per-element accumulation). Both compute the same sum,
            # in a different association order (float tolerance).
            k = self.kernel_size
            _, _, _, out_h, out_w = self._indices
            pad_g = k - 1 - self.padding
            if self._dx_indices is None:
                self._dx_indices = F.im2col_indices(
                    self.out_channels, out_h, out_w, k, k, 1, pad_g
                )
            g_cols = F.im2col(
                g.reshape(c * n, self.out_channels, out_h, out_w),
                self._dx_indices,
                pad_g,
            )
            g_cols = g_cols.reshape(c, n, g_cols.shape[1], g_cols.shape[2])
            # w_hat[c_in, f·k·k]: filters flipped in both spatial dims.
            w_hat = (
                self.weight.data[:, :, :, ::-1, ::-1]
                .transpose(0, 2, 1, 3, 4)
                .reshape(c, ch, -1)
            )
            dx = np.matmul(w_hat[:, None], g_cols)  # (C, N, ch, H·W)
            return dx.reshape(c, n, ch, h, w)
        dcols = np.matmul(self._w_mat().transpose(0, 2, 1)[:, None], gf)
        dx = F.col2im(
            dcols.reshape(cc * nn_, dcols.shape[2], dcols.shape[3]),
            (cc * nn_, ch, h, w),
            self._indices,
            self.padding,
        )
        return dx.reshape(self._x_shape)


class CReLU(_CohortLayer):
    def __init__(self) -> None:
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.relu(x)

    def backward(self, g: np.ndarray) -> np.ndarray:
        x, self._x = self._x, None
        return F.relu_grad(x, g)


class CTanh(_CohortLayer):
    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, g: np.ndarray) -> np.ndarray:
        out, self._out = self._out, None
        return g * (1.0 - out**2)


class CIdentity(_CohortLayer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, g: np.ndarray) -> np.ndarray:
        return g


class CFlatten(_CohortLayer):
    """Collapse all dims after (client, batch)."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, g: np.ndarray) -> np.ndarray:
        return g.reshape(self._shape)


class CDropout(_CohortLayer):
    """Inverted dropout drawing each member's mask from that member's own
    serial ``Dropout`` layer RNG, in serial order — so a member's RNG
    stream advances exactly as it would under the serial executor. Masked
    (inactive) members draw nothing."""

    def __init__(self, ref: Dropout, cohort_size: int) -> None:
        self.p = ref.p
        self._members: list[Dropout] | None = None
        self._mask: np.ndarray | None = None
        self.active: np.ndarray | None = None  # set per step by the engine
        self.valid_counts: np.ndarray | None = None

    def bind_members(self, modules: list[Module]) -> None:
        self._members = modules  # type: ignore[assignment]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        c = x.shape[0]
        mask = np.zeros_like(x, dtype=np.float32)
        counts = self.valid_counts
        for i in range(c):
            if self.active is not None and not self.active[i]:
                continue
            b = int(counts[i]) if counts is not None else x.shape[1]
            rng = self._members[i]._rng
            shape = (b,) + x.shape[2:]
            mask[i, :b] = (rng.random(shape) < keep).astype(np.float32) / keep
        self._mask = mask
        return x * mask

    def backward(self, g: np.ndarray) -> np.ndarray:
        mask, self._mask = self._mask, None
        if mask is None:
            return g
        return g * mask


class CMaxPool2d(_CohortLayer):
    """Batched non-overlapping max pooling with tie-splitting backward.

    Implemented over ``k²`` strided slices (``x[..., i::k, j::k]``) rather
    than the serial layer's 7-D window view: the slice reductions are an
    order of magnitude faster on the stacked ``(C, N, …)`` tensors because
    each ``np.maximum`` runs over large contiguous-ish blocks instead of a
    doubly-strided axis pair. The arithmetic (max, tie counting, gradient
    split ``g / ties``) is identical to the serial layer's.
    """

    def __init__(self, ref: MaxPool2d) -> None:
        self.kernel_size = ref.kernel_size
        self._masks: list[np.ndarray] | None = None
        self._tie_counts = None
        self._x_shape: tuple[int, ...] | None = None
        self._trunc: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        c, n, ch, h, w = x.shape
        th, tw = (h // k) * k, (w // k) * k
        self._x_shape = x.shape
        self._trunc = (th, tw)
        xt = x[:, :, :, :th, :tw]
        slices = [xt[..., i::k, j::k] for i in range(k) for j in range(k)]
        out = slices[0]
        for s in slices[1:]:
            out = np.maximum(out, s)
        self._masks = [s == out for s in slices]
        ties = self._masks[0].astype(np.int64)
        for m in self._masks[1:]:
            ties += m
        self._tie_counts = ties
        return out

    def backward(self, g: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        th, tw = self._trunc
        # Same float promotion as serial: float32 grad / int64 ties → float64,
        # cast back to the grad dtype on assignment.
        gs = g / self._tie_counts
        masks, self._masks = self._masks, None
        self._tie_counts = None
        grad = np.zeros(self._x_shape, dtype=g.dtype)
        sub = grad[:, :, :, :th, :tw]
        idx = 0
        for i in range(k):
            for j in range(k):
                sub[..., i::k, j::k] = np.where(masks[idx], gs, 0.0)
                idx += 1
        return grad


class CAvgPool2d(_CohortLayer):
    def __init__(self, ref: AvgPool2d) -> None:
        self.kernel_size = ref.kernel_size
        self._x_shape: tuple[int, ...] | None = None
        self._trunc: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        c, n, ch, h, w = x.shape
        th, tw = (h // k) * k, (w // k) * k
        self._x_shape = x.shape
        self._trunc = (th, tw)
        windows = x[:, :, :, :th, :tw].reshape(c, n, ch, th // k, k, tw // k, k)
        return windows.mean(axis=(4, 6))

    def backward(self, g: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        c, n, ch, h, w = self._x_shape
        th, tw = self._trunc
        gk = g / (k * k)
        grad = np.zeros(self._x_shape, dtype=g.dtype)
        expanded = np.broadcast_to(
            gk[:, :, :, :, None, :, None], (c, n, ch, th // k, k, tw // k, k)
        )
        grad[:, :, :, :th, :tw] = expanded.reshape(c, n, ch, th, tw)
        return grad


class CGlobalAvgPool2d(_CohortLayer):
    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(3, 4))

    def backward(self, g: np.ndarray) -> np.ndarray:
        c, n, ch, h, w = self._x_shape
        gk = g / (h * w)
        return np.broadcast_to(gk[:, :, :, None, None], self._x_shape).astype(
            g.dtype
        ).copy()


class CGroupNorm2d(_CohortLayer):
    """Batched group normalisation (stateless, so train == eval)."""

    def __init__(self, prefix: str, ref: GroupNorm2d, cohort_size: int) -> None:
        self.num_groups = ref.num_groups
        self.num_channels = ref.num_channels
        self.eps = ref.eps
        self.weight = CohortParameter(
            f"{prefix}weight", cohort_size, ref.weight.data.shape
        )
        self.bias = CohortParameter(f"{prefix}bias", cohort_size, ref.bias.data.shape)
        self._cache: tuple | None = None

    def params(self) -> list[CohortParameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        c, n, ch, h, w = x.shape
        g = self.num_groups
        grouped = x.reshape(c, n, g, ch // g, h, w)
        mean = grouped.mean(axis=(3, 4, 5), keepdims=True)
        var = grouped.var(axis=(3, 4, 5), keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = ((grouped - mean) * inv_std).reshape(c, n, ch, h, w)
        self._cache = (x_hat, inv_std, (c, n, ch, h, w))
        return (
            self.weight.data[:, None, :, None, None] * x_hat
            + self.bias.data[:, None, :, None, None]
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_hat, inv_std, (c, n, ch, h, w) = self._cache
        self._cache = None
        g = self.num_groups
        m = (ch // g) * h * w
        self.weight.grad += (grad_out * x_hat).sum(axis=(1, 3, 4))
        self.bias.grad += grad_out.sum(axis=(1, 3, 4))
        gy = (grad_out * self.weight.data[:, None, :, None, None]).reshape(
            c, n, g, ch // g, h, w
        )
        xh = x_hat.reshape(c, n, g, ch // g, h, w)
        sum_gy = gy.sum(axis=(3, 4, 5), keepdims=True)
        sum_gyxh = (gy * xh).sum(axis=(3, 4, 5), keepdims=True)
        dx = (inv_std / m) * (m * gy - sum_gy - xh * sum_gyxh)
        return dx.reshape(c, n, ch, h, w)


class CLSTM(_CohortLayer):
    """Batched stacked LSTM: the python time loop is kept (it is inherently
    sequential) but each timestep's gate matmuls advance all M clients in
    one batched GEMM per operand."""

    def __init__(self, prefix: str, ref: LSTM, cohort_size: int) -> None:
        self.input_size = ref.input_size
        self.hidden_size = ref.hidden_size
        self.num_layers = ref.num_layers
        self._p: list[tuple[CohortParameter, ...]] = []
        for layer in range(ref.num_layers):
            names = (
                f"weight_ih_l{layer}", f"weight_hh_l{layer}",
                f"bias_ih_l{layer}", f"bias_hh_l{layer}",
            )
            self._p.append(
                tuple(
                    CohortParameter(
                        f"{prefix}{n}", cohort_size, ref._parameters[n].data.shape
                    )
                    for n in names
                )
            )
        self._cache: list[list[dict]] | None = None
        self._x_shape: tuple[int, ...] | None = None

    def params(self) -> list[CohortParameter]:
        return [p for quad in self._p for p in quad]

    def forward(self, x: np.ndarray) -> np.ndarray:
        c, n, t_steps, d = x.shape
        if d != self.input_size:
            raise ValueError(f"expected input size {self.input_size}, got {d}")
        h_dim = self.hidden_size
        self._x_shape = x.shape
        self._cache = []
        layer_input = x
        for layer in range(self.num_layers):
            w_ih, w_hh, b_ih, b_hh = self._p[layer]
            w_ih_t = w_ih.data.transpose(0, 2, 1)
            w_hh_t = w_hh.data.transpose(0, 2, 1)
            bias = (b_ih.data + b_hh.data)[:, None, :]
            h = np.zeros((c, n, h_dim), dtype=np.float32)
            cc = np.zeros((c, n, h_dim), dtype=np.float32)
            steps: list[dict] = []
            outputs = np.empty((c, n, t_steps, h_dim), dtype=np.float32)
            for t in range(t_steps):
                x_t = layer_input[:, :, t, :]
                z = np.matmul(x_t, w_ih_t) + np.matmul(h, w_hh_t) + bias
                i_g = F.sigmoid(z[..., :h_dim])
                f_g = F.sigmoid(z[..., h_dim : 2 * h_dim])
                g_g = np.tanh(z[..., 2 * h_dim : 3 * h_dim])
                o_g = F.sigmoid(z[..., 3 * h_dim :])
                c_new = f_g * cc + i_g * g_g
                tanh_c = np.tanh(c_new)
                h_new = o_g * tanh_c
                steps.append(
                    {
                        "x": x_t, "h_prev": h, "c_prev": cc,
                        "i": i_g, "f": f_g, "g": g_g, "o": o_g, "tanh_c": tanh_c,
                    }
                )
                h, cc = h_new, c_new
                outputs[:, :, t, :] = h_new
            self._cache.append(steps)
            layer_input = outputs
        return layer_input[:, :, -1, :]

    def backward(self, grad_h_last: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("CLSTM.backward called before forward")
        c, n, t_steps, _ = self._x_shape
        h_dim = self.hidden_size
        dh_seq = np.zeros((c, n, t_steps, h_dim), dtype=np.float32)
        dh_seq[:, :, -1, :] = grad_h_last
        dx_seq: np.ndarray | None = None
        for layer in range(self.num_layers - 1, -1, -1):
            w_ih, w_hh, b_ih, b_hh = self._p[layer]
            steps = self._cache[layer]
            in_dim = self.input_size if layer == 0 else h_dim
            # Stack layer 0's input gradient is the whole module's input
            # gradient — skip the per-timestep dx matmuls when no earlier
            # layer consumes it.
            want_dx = layer > 0 or self.compute_dx
            dx_seq = np.zeros((c, n, t_steps, in_dim), dtype=np.float32)
            dh_next = np.zeros((c, n, h_dim), dtype=np.float32)
            dc_next = np.zeros((c, n, h_dim), dtype=np.float32)
            for t in range(t_steps - 1, -1, -1):
                s = steps[t]
                dh = dh_seq[:, :, t, :] + dh_next
                do = dh * s["tanh_c"]
                dc = dh * s["o"] * (1.0 - s["tanh_c"] ** 2) + dc_next
                di = dc * s["g"]
                df = dc * s["c_prev"]
                dg = dc * s["i"]
                dz = np.concatenate(
                    [
                        di * s["i"] * (1.0 - s["i"]),
                        df * s["f"] * (1.0 - s["f"]),
                        dg * (1.0 - s["g"] ** 2),
                        do * s["o"] * (1.0 - s["o"]),
                    ],
                    axis=2,
                )
                dz_t = dz.transpose(0, 2, 1)  # (C, 4H, N)
                w_ih.grad += np.matmul(dz_t, s["x"])
                w_hh.grad += np.matmul(dz_t, s["h_prev"])
                dbias = dz.sum(axis=1)
                b_ih.grad += dbias
                b_hh.grad += dbias
                if want_dx:
                    dx_seq[:, :, t, :] = np.matmul(dz, w_ih.data)
                dh_next = np.matmul(dz, w_hh.data)
                dc_next = dc * s["f"]
            dh_seq = dx_seq
        self._cache = None
        return dx_seq


# ----------------------------------------------------------------------
# Chain extraction and model construction
# ----------------------------------------------------------------------
def _chain_of(module: Module, prefix: str = "") -> list[tuple[str, Module]]:
    """Flatten a model into its ordered primitive forward chain with dotted
    name prefixes; raises :class:`CohortUnsupportedModel` for topologies the
    batched program cannot express."""
    if isinstance(module, Sequential):
        out: list[tuple[str, Module]] = []
        for name in module._order:
            out.extend(_chain_of(getattr(module, name), f"{prefix}{name}."))
        return out
    chain = getattr(module, "_chain", None)
    if chain is not None:
        # Chain members are direct submodules; recover their registered names.
        by_id = {id(m): name for name, m in module._modules.items()}
        out = []
        for m in chain:
            name = by_id.get(id(m))
            if name is None:
                raise CohortUnsupportedModel(
                    f"{type(module).__name__}._chain contains an unregistered module"
                )
            out.extend(_chain_of(m, f"{prefix}{name}."))
        return out
    if type(module) in _CONVERTERS:
        return [(prefix, module)]
    if list(module._parameters) or list(module._buffers):
        raise CohortUnsupportedModel(
            f"layer {type(module).__name__} has no batched cohort twin"
        )
    # Parameter-free container without an explicit chain: fall back to its
    # registration order, which matches forward order for simple heads
    # (e.g. LSTMClassifier's rnn -> fc).
    if module._modules:
        out = []
        for name, sub in module._modules.items():
            out.extend(_chain_of(sub, f"{prefix}{name}."))
        return out
    raise CohortUnsupportedModel(
        f"cannot extract a forward chain from {type(module).__name__}"
    )


_CONVERTERS = {
    Linear: lambda pre, ref, c: CLinear(pre, ref, c),
    Conv2d: lambda pre, ref, c: CConv2d(pre, ref, c),
    ReLU: lambda pre, ref, c: CReLU(),
    Tanh: lambda pre, ref, c: CTanh(),
    Identity: lambda pre, ref, c: CIdentity(),
    Flatten: lambda pre, ref, c: CFlatten(),
    Dropout: lambda pre, ref, c: CDropout(ref, c),
    MaxPool2d: lambda pre, ref, c: CMaxPool2d(ref),
    AvgPool2d: lambda pre, ref, c: CAvgPool2d(ref),
    GlobalAvgPool2d: lambda pre, ref, c: CGlobalAvgPool2d(),
    GroupNorm2d: lambda pre, ref, c: CGroupNorm2d(pre, ref, c),
    LSTM: lambda pre, ref, c: CLSTM(pre, ref, c),
}


def cohort_supported(model: Module) -> tuple[bool, str]:
    """Whether the model has a batched cohort program; ``(ok, reason)``."""
    try:
        _chain_of(model)
        return True, ""
    except CohortUnsupportedModel as exc:
        return False, str(exc)


class CohortModel:
    """M stacked client replicas of one architecture.

    ``params[name].data[i]`` is member ``i``'s value of parameter ``name``
    (a zero-copy view of the stacked tensor). Layer-name order matches the
    template model's ``named_parameters()`` order exactly, so per-member
    view dicts are drop-in replacements for serial ``state_dict``s in the
    FedCA sampling/retransmission machinery.
    """

    def __init__(self, template: Module, cohort_size: int) -> None:
        if cohort_size < 1:
            raise ValueError("cohort_size must be >= 1")
        self.cohort_size = cohort_size
        self.layers: list[_CohortLayer] = []
        self._layer_prefixes: list[str] = []
        self.params: dict[str, CohortParameter] = {}
        for prefix, module in _chain_of(template):
            layer = _CONVERTERS[type(module)](prefix, module, cohort_size)
            self.layers.append(layer)
            self._layer_prefixes.append(prefix)
            for p in layer.params():
                self.params[p.name] = p
        # Validate against the template's parameter census: a converter that
        # silently dropped a parameter would corrupt aggregation.
        template_names = [name for name, _ in template.named_parameters()]
        if sorted(template_names) != sorted(self.params):
            raise CohortUnsupportedModel(
                "cohort parameter set does not match template model"
            )
        # Preserve the template's depth-first parameter order.
        self.params = {name: self.params[name] for name in template_names}
        self._dropouts = [l for l in self.layers if isinstance(l, CDropout)]
        # The first layer's input gradient has no consumer; let it skip the
        # (often expensive) dX computation.
        if self.layers:
            self.layers[0].compute_dx = False

    # ------------------------------------------------------------------
    def bind_member_models(self, models: list[Module]) -> None:
        """Attach the members' serial replicas (per-member Dropout RNGs)."""
        if len(models) != self.cohort_size:
            raise ValueError("need exactly one member model per cohort slot")
        for layer, prefix in zip(self.layers, self._layer_prefixes):
            if isinstance(layer, CDropout):
                layer.bind_members([self._resolve(m, prefix) for m in models])

    @staticmethod
    def _resolve(model: Module, dotted_prefix: str) -> Module:
        node = model
        for part in dotted_prefix.rstrip(".").split("."):
            if part:
                node = getattr(node, part)
        return node

    # ------------------------------------------------------------------
    def load_global(self, state: dict[str, np.ndarray]) -> None:
        """Broadcast the server state into every member slot."""
        own = set(self.params)
        if own != set(state):
            missing = sorted(own - set(state))
            extra = sorted(set(state) - own)
            raise KeyError(
                f"state_dict mismatch: missing={missing} extra={extra}"
            )
        for name, p in self.params.items():
            p.data[...] = np.asarray(state[name], dtype=np.float32)

    def member_params(self, i: int) -> dict[str, np.ndarray]:
        """Member ``i``'s parameter views (zero-copy)."""
        return {name: p.data[i] for name, p in self.params.items()}

    def stacked_update(
        self, global_state: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Accumulated updates for the whole cohort, one vectorised subtract
        per layer: ``update[name][i]`` is member ``i``'s ``w_local − w_global``.
        Per-member result dicts are zero-copy views into these stacks, so
        aggregation consumes the batched tensor without an unstack pass."""
        return {
            name: p.data - np.asarray(global_state[name], dtype=np.float32)[None]
            for name, p in self.params.items()
        }

    def write_back(self, models: list[Module]) -> None:
        """Copy each member's trained slot into its serial replica, leaving
        the replicas exactly as a serial round would (cheap insurance for
        anything that inspects ``client.model`` between rounds)."""
        for i, model in enumerate(models):
            for name, p in model.named_parameters():
                p.data[...] = self.params[name].data[i]

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.params.values():
            p.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, g: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            g = layer.backward(g)
        return g

    def set_step_masks(
        self, active: np.ndarray, valid_counts: np.ndarray
    ) -> None:
        """Publish this step's member-activity mask and per-member valid
        row counts to the layers that need them (Dropout draws)."""
        for d in self._dropouts:
            d.active = active
            d.valid_counts = valid_counts


# ----------------------------------------------------------------------
# Loss and optimizer
# ----------------------------------------------------------------------
def cohort_softmax_cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Masked per-member softmax cross-entropy over padded ``(C, B, K)``
    logits.

    ``counts[i]`` is member ``i``'s number of valid rows (0 for masked-out
    members); rows at or beyond a member's count carry exactly-zero
    gradient, and each member's loss/gradient is normalised by its *own*
    count — matching what a serial per-client loss computes.

    Returns ``(loss, grad)`` with ``loss`` shape ``(C,)`` (``0.0`` for
    members with no valid rows) and ``grad`` shaped like ``logits``.
    """
    c, b, _ = logits.shape
    if labels.shape != (c, b):
        raise ValueError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    counts = np.asarray(counts)
    valid = (np.arange(b)[None, :] < counts[:, None]).astype(np.float32)  # (C, B)
    safe = np.maximum(counts, 1).astype(np.float64)

    log_probs = F.log_softmax(logits, axis=2)
    ci = np.arange(c)[:, None]
    bi = np.arange(b)[None, :]
    picked = log_probs[ci, bi, labels]  # (C, B)
    # Masked per-member reduction through the shared einsum-plan cache.
    loss = -planned_einsum("cb,cb->c", picked.astype(np.float64), valid.astype(np.float64)) / safe

    grad = F.softmax(logits, axis=2)
    grad[ci, bi, labels] -= 1.0
    grad *= (valid / safe[:, None].astype(np.float32))[:, :, None]
    return loss, grad.astype(np.float32)


class CohortSGD:
    """Batched SGD/momentum step over stacked parameters with an active
    mask: a masked member's parameters do not move at all — the *entire*
    effective step (including the weight-decay component, which is nonzero
    even at zero loss gradient) is multiplied by the mask, exactly
    reproducing a serial client that simply stopped calling ``step()``."""

    def __init__(
        self,
        model: CohortModel,
        lr: float,
        *,
        weight_decay: float = 0.0,
        momentum: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.model = model
        self.lr = lr
        self.weight_decay = weight_decay
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] | None = (
            {name: np.zeros_like(p.data) for name, p in model.params.items()}
            if momentum > 0.0
            else None
        )

    def step(self, active: np.ndarray | None = None) -> None:
        """One masked update for every stacked parameter.

        ``active`` is a ``(C,)`` boolean mask; ``None`` means all members
        step. Velocity slots of inactive members are updated-but-unused:
        within one round a member never re-activates (stops are terminal
        and budgets are prefixes), and optimizers never outlive a round.
        """
        for name, p in self.model.params.items():
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self._velocity is not None:
                v = self._velocity[name]
                v *= self.momentum
                v += grad
                grad = v
            if active is None:
                p.data -= self.lr * grad
            else:
                mask = active.astype(np.float32).reshape(
                    (-1,) + (1,) * (p.data.ndim - 1)
                )
                p.data -= self.lr * grad * mask

    def zero_grad(self) -> None:
        self.model.zero_grad()


def build_cohort_model(template: Module, cohort_size: int) -> CohortModel:
    """Build the batched cohort program for ``cohort_size`` replicas of
    ``template``; raises :class:`CohortUnsupportedModel` when the
    architecture has no batched expression (e.g. WideResNet)."""
    return CohortModel(template, cohort_size)
