"""Trace sinks: where the flight-recorder pipeline writes its events.

The :class:`~repro.obs.recorder.TraceRecorder` used to write one JSONL line
per event synchronously on the hot path. This module turns that into a
pluggable pipeline (DESIGN.md §13):

* :class:`Sink` — the protocol. A sink receives whole
  :class:`~repro.obs.events.TraceEvent` objects (serialisation is the
  sink's job, so it can happen off the hot path) in emission order and
  must write them in that same order.
* :class:`JsonlSink` — the synchronous baseline: one sorted-key JSON
  object per line, byte-identical to the pre-pipeline recorder output.
* :class:`BinarySink` — compact length-prefixed binary records
  (``RPROBIN1``); :func:`read_binary_trace` recovers the exact
  ``as_dict`` forms, so a binary trace re-serialises to the byte-identical
  JSONL text.
* :class:`RotatingFileSink` — size- and/or round-based segment rotation
  (JSONL or binary). Records never split across segments.
* :class:`BufferedSink` — the flight recorder: events land in a bounded
  in-memory queue and a background flusher thread drains them into any
  inner sink in batches. The producer pays one deque append instead of a
  serialise+write, which is what keeps telemetry viable at million-event
  scale.

Backpressure (``BufferedSink``)
-------------------------------
When the queue is full the configured policy decides:

* ``"block"`` (default): the producer waits for the flusher — **no event
  is ever lost** and the drained byte stream is identical to a
  synchronous sink's, so the serial/parallel/cohort byte-identical-trace
  contract survives buffering.
* ``"drop_oldest"``: the oldest queued event is discarded and counted
  (``dropped_events``; surfaced as the ``repro_trace_dropped_total``
  counter by the recorder). Lossy by design — overflow detection in
  :mod:`repro.obs.analysis` refuses to compute from such a trace.

Ordering is single-consumer by construction: the flusher and any
foreground ``flush()``/``sync()`` call serialise on one lock, so inner
writes always happen in emission order regardless of which thread drains.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .events import TraceEvent

__all__ = [
    "Sink",
    "JsonlSink",
    "BinarySink",
    "RotatingFileSink",
    "BufferedSink",
    "SinkError",
    "encode_jsonl",
    "encode_binary",
    "read_binary_trace",
    "BACKPRESSURE_POLICIES",
    "TRACE_DROPPED_TOTAL",
]

#: Recorder counter fed by ``BufferedSink(policy="drop_oldest")`` drops.
TRACE_DROPPED_TOTAL = "repro_trace_dropped_total"

BACKPRESSURE_POLICIES = ("block", "drop_oldest")


class SinkError(RuntimeError):
    """A background flusher failure, re-raised on the producer thread."""


def encode_jsonl(event: "TraceEvent") -> bytes:
    """One event as its canonical JSONL line (sorted keys, ``\\n``).

    ``drop_wall_clock=False`` keeps the opt-in ``wall_time`` field when
    the recorder captured it and omits it otherwise — exactly the
    pre-pipeline synchronous behaviour, byte for byte.
    """
    return (
        json.dumps(event.as_dict(drop_wall_clock=False), sort_keys=True) + "\n"
    ).encode("utf-8")


# Binary record: magic-less per-record header (the file carries one magic
# preamble), fixed fields packed little-endian, then kind + compact-JSON
# fields payloads. ``round``/``client`` are never negative, so -1 encodes
# None; bit 0 of ``flags`` marks a trailing wall_time f64.
_BIN_MAGIC = b"RPROBIN1"
_BIN_RECORD = struct.Struct("<QdiiBHI")  # seq, sim_time, round, client,
#                                          flags, kind_len, fields_len


def encode_binary(event: "TraceEvent") -> bytes:
    kind = event.kind.encode("utf-8")
    fields = json.dumps(
        event.fields, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    flags = 1 if event.wall_time is not None else 0
    head = _BIN_RECORD.pack(
        event.seq,
        event.sim_time,
        -1 if event.round_index is None else event.round_index,
        -1 if event.client_id is None else event.client_id,
        flags,
        len(kind),
        len(fields),
    )
    tail = struct.pack("<d", event.wall_time) if flags else b""
    return head + kind + fields + tail


def _iter_binary_records(blob: bytes) -> Iterator[dict[str, Any]]:
    if blob[: len(_BIN_MAGIC)] != _BIN_MAGIC:
        raise ValueError(
            f"not a {_BIN_MAGIC.decode()} binary trace "
            f"(magic={blob[:8]!r})"
        )
    off = len(_BIN_MAGIC)
    while off < len(blob):
        if off + _BIN_RECORD.size > len(blob):
            raise ValueError(f"truncated binary trace record at offset {off}")
        seq, sim_time, rnd, cid, flags, kind_len, fields_len = (
            _BIN_RECORD.unpack_from(blob, off)
        )
        off += _BIN_RECORD.size
        end = off + kind_len + fields_len + (8 if flags & 1 else 0)
        if end > len(blob):
            raise ValueError(f"truncated binary trace record at offset {off}")
        kind = blob[off : off + kind_len].decode("utf-8")
        off += kind_len
        fields = json.loads(blob[off : off + fields_len].decode("utf-8"))
        off += fields_len
        out: dict[str, Any] = {
            "seq": seq,
            "kind": kind,
            "sim_time": sim_time,
            "round": None if rnd < 0 else rnd,
            "client": None if cid < 0 else cid,
            "fields": fields,
        }
        if flags & 1:
            (out["wall_time"],) = struct.unpack_from("<d", blob, off)
            off += 8
        yield out


def read_binary_trace(path: str) -> list[dict[str, Any]]:
    """Decode a :class:`BinarySink` file back to event ``as_dict`` forms.

    The round-trip is exact: re-serialising the returned dicts as
    sorted-key JSONL reproduces the byte-identical :class:`JsonlSink`
    output of the same run (``tests/test_sinks.py`` pins this).
    """
    with open(path, "rb") as fh:
        return list(_iter_binary_records(fh.read()))


class Sink:
    """Where serialised trace events go. Single-producer, order-preserving.

    Implementations receive events via :meth:`write` in emission order and
    must persist them in that order. ``flush``/``close`` are idempotent;
    :meth:`sync` additionally makes the written prefix durable (fsync) and
    returns its byte offset when the sink supports checkpoint/resume
    truncation (see :meth:`repro.obs.recorder.TraceRecorder.snapshot_state`),
    else ``None``.
    """

    def write(self, event: "TraceEvent") -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered output down to the OS."""

    def sync(self) -> int | None:
        """Flush + fsync; returns the durable byte offset or ``None``."""
        self.flush()
        return None

    def close(self) -> None:
        """Flush and release resources. Idempotent."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _FileSink(Sink):
    """Shared single-file plumbing for the JSONL and binary sinks."""

    #: Bytes written before any event record (file magic).
    preamble: bytes = b""

    def __init__(self, path: str, *, resume_offset: int | None = None) -> None:
        self.path = path
        self._closed = False
        if resume_offset is not None and os.path.exists(path):
            # Checkpoint resume: discard whatever a crashed process flushed
            # past its last checkpoint, then append (see TraceRecorder
            # .attach_sink).
            self._fh = open(path, "r+b")
            self._fh.seek(int(resume_offset))
            self._fh.truncate()
        else:
            self._fh = open(path, "wb")
            if self.preamble:
                self._fh.write(self.preamble)

    def encode(self, event: "TraceEvent") -> bytes:
        raise NotImplementedError

    def write(self, event: "TraceEvent") -> None:
        self._fh.write(self.encode(event))

    def flush(self) -> None:
        if not self._closed:
            self._fh.flush()

    def sync(self) -> int | None:
        if self._closed:
            return None
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return self._fh.tell()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        self._fh.close()


class JsonlSink(_FileSink):
    """Synchronous one-JSON-object-per-line sink (the determinism baseline)."""

    def encode(self, event: "TraceEvent") -> bytes:
        return encode_jsonl(event)


class BinarySink(_FileSink):
    """Compact binary records behind an ``RPROBIN1`` preamble.

    Roughly 2× smaller than JSONL for typical events and cheaper to encode;
    :func:`read_binary_trace` converts back losslessly.
    """

    preamble = _BIN_MAGIC

    def encode(self, event: "TraceEvent") -> bytes:
        return encode_binary(event)


class RotatingFileSink(Sink):
    """Segment-rotating file sink, size- and/or round-based.

    Parameters
    ----------
    path:
        Base path; segments are written next to it as
        ``<stem>.NNNN<suffix>`` (``trace.jsonl`` → ``trace.0000.jsonl``).
    max_bytes:
        Rotate before a record would push the current segment past this
        size. A single record larger than ``max_bytes`` still lands whole
        (records never split across segments).
    max_rounds:
        Rotate after this many ``round.end`` events land in a segment, so
        each segment holds a whole number of rounds.
    binary:
        Use the compact binary encoding instead of JSONL.
    """

    def __init__(
        self,
        path: str,
        *,
        max_bytes: int | None = None,
        max_rounds: int | None = None,
        binary: bool = False,
    ) -> None:
        if max_bytes is None and max_rounds is None:
            raise ValueError("need max_bytes and/or max_rounds to rotate on")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if max_rounds is not None and max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.path = path
        self.max_bytes = max_bytes
        self.max_rounds = max_rounds
        self._encode = encode_binary if binary else encode_jsonl
        self._preamble = _BIN_MAGIC if binary else b""
        self._paths: list[str] = []
        self._fh = None
        self._index = 0
        self._size = 0
        self._rounds = 0
        self._rotate_pending = False
        self._closed = False
        self._open_segment()

    def _segment_path(self, index: int) -> str:
        root, ext = os.path.splitext(self.path)
        return f"{root}.{index:04d}{ext}"

    def _open_segment(self) -> None:
        path = self._segment_path(self._index)
        self._fh = open(path, "wb")
        if self._preamble:
            self._fh.write(self._preamble)
        self._paths.append(path)
        self._size = len(self._preamble)
        self._rounds = 0
        self._index += 1

    def _rotate(self) -> None:
        self._fh.flush()
        self._fh.close()
        self._open_segment()

    def paths(self) -> list[str]:
        """Segment paths in write order (the active segment last)."""
        return list(self._paths)

    def write(self, event: "TraceEvent") -> None:
        blob = self._encode(event)
        # Round rotation is lazy — deferred to the next write — so a run
        # whose last event is a round.end never leaves an empty segment.
        if self._rotate_pending:
            self._rotate()
            self._rotate_pending = False
        if (
            self.max_bytes is not None
            and self._size > len(self._preamble)
            and self._size + len(blob) > self.max_bytes
        ):
            self._rotate()
        self._fh.write(blob)
        self._size += len(blob)
        if self.max_rounds is not None and event.kind == "round.end":
            self._rounds += 1
            if self._rounds >= self.max_rounds:
                self._rotate_pending = True

    def flush(self) -> None:
        if not self._closed:
            self._fh.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        self._fh.close()


class BufferedSink(Sink):
    """Bounded-queue sink drained by a background flusher thread.

    The producer-side :meth:`write` appends the (immutable) event to a
    deque — no serialisation, no I/O — and the flusher wakes every
    ``flush_interval`` seconds to drain whatever accumulated into the
    ``inner`` sink, flushing it after each batch so a crash loses at most
    one interval of events. See the module docstring for the backpressure
    policies and the determinism contract.

    ``autostart=False`` leaves the flusher unstarted (tests use this to
    make drop accounting exactly reproducible); call :meth:`start` or rely
    on ``flush``/``close``, which drain on the calling thread regardless.
    """

    def __init__(
        self,
        inner: Sink,
        *,
        capacity: int = 65536,
        policy: str = "block",
        flush_interval: float = 0.05,
        autostart: bool = True,
        on_drop: Callable[[int], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        self.inner = inner
        self.capacity = capacity
        self.policy = policy
        self.flush_interval = flush_interval
        self.on_drop = on_drop
        self.dropped_events = 0
        self._queue: deque["TraceEvent"] = deque()
        # One lock serialises every consumer (flusher thread, foreground
        # flush/sync/close) so inner writes keep emission order; the
        # condition wakes blocked producers when the flusher makes room.
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None
        self._closed = False
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background flusher (idempotent)."""
        if self._thread is None and not self._closed:
            self._thread = threading.Thread(
                target=self._run, name="repro-trace-flusher", daemon=True
            )
            self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.flush_interval):
            self._drain()
        self._drain()  # final sweep before the thread exits

    def _drain(self) -> None:
        """Move every queued event into the inner sink (any thread)."""
        with self._lock:
            wrote = False
            while True:
                try:
                    event = self._queue.popleft()
                except IndexError:
                    break
                try:
                    self.inner.write(event)
                    wrote = True
                except BaseException as exc:  # surface on the producer side
                    if self._error is None:
                        self._error = exc
                    self._stop.set()
                    break
            if wrote and self._error is None:
                try:
                    self.inner.flush()
                except BaseException as exc:
                    self._error = exc
                    self._stop.set()
            self._space.notify_all()

    def _raise_pending(self) -> None:
        if self._error is not None:
            raise SinkError(
                f"trace flusher failed: {self._error!r}"
            ) from self._error

    # ------------------------------------------------------------------
    def write(self, event: "TraceEvent") -> None:
        self._raise_pending()
        if len(self._queue) >= self.capacity:
            if self.policy == "drop_oldest":
                try:
                    self._queue.popleft()
                except IndexError:  # pragma: no cover - flusher raced us
                    pass
                else:
                    self.dropped_events += 1
                    if self.on_drop is not None:
                        self.on_drop(1)
            else:  # block
                flusher_alive = (
                    self._thread is not None and self._thread.is_alive()
                )
                if not flusher_alive:
                    # No one else will make room — drain here rather than
                    # deadlocking the producer.
                    self._drain()
                    self._raise_pending()
                else:
                    with self._space:
                        while (
                            len(self._queue) >= self.capacity
                            and self._error is None
                            and not self._stop.is_set()
                        ):
                            self._space.wait(timeout=0.5)
                    self._raise_pending()
        self._queue.append(event)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drain the queue on the calling thread and flush the inner sink."""
        self._drain()
        self._raise_pending()

    def sync(self) -> int | None:
        self._drain()
        self._raise_pending()
        return self.inner.sync()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._drain()
        self.inner.close()
        self._raise_pending()
