"""Recorder protocol and the two shipped implementations.

* :class:`NullRecorder` — the default. Every method is a no-op and
  ``enabled`` is False, so instrumentation sites cost one attribute check
  (or one no-op call) per event; ``run()`` histories are bitwise identical
  to an uninstrumented build.
* :class:`TraceRecorder` — bounded in-memory ring of
  :class:`~repro.obs.events.TraceEvent` plus a counters/gauges registry,
  with an optional streaming JSONL sink.

Determinism contract
--------------------
All events are keyed on simulated time. Client-side events produced inside
:class:`~repro.runtime.parallel.ParallelExecutor` workers travel back to
the parent on the ``trace`` field of each
:class:`~repro.runtime.round.ClientRoundResult`; the simulator merges them
via :meth:`Recorder.merge_client_trace` in job order (sorted client ids),
so the sequence numbers — and therefore the whole trace — are identical
for serial and parallel executions of the same run.
"""

from __future__ import annotations

import atexit
import time
from collections import deque
from typing import Any, Iterable

from .events import TraceEvent
from .sinks import TRACE_DROPPED_TOTAL, BufferedSink, JsonlSink, Sink

__all__ = ["Recorder", "NullRecorder", "TraceRecorder", "NULL_RECORDER"]


class Recorder:
    """Telemetry sink interface (also usable as a structural protocol).

    Subclasses override the methods they care about; the base class is a
    complete no-op so custom recorders only implement what they need.
    """

    #: Fast guard for instrumentation sites: skip event *construction*
    #: entirely when nothing is listening.
    enabled: bool = False

    # -- events --------------------------------------------------------
    def emit(
        self,
        kind: str,
        *,
        sim_time: float,
        round_index: int | None = None,
        client_id: int | None = None,
        **fields: Any,
    ) -> None:
        """Record one structured event at a simulated-time instant."""

    def span(
        self,
        kind: str,
        *,
        sim_start: float,
        sim_end: float,
        round_index: int | None = None,
        client_id: int | None = None,
        **fields: Any,
    ) -> None:
        """Record an interval event: an ``emit`` at ``sim_start`` carrying
        the span's ``duration`` (``sim_end − sim_start``)."""

    def merge_client_trace(
        self,
        round_index: int,
        client_id: int,
        trace: Iterable[dict[str, Any]] | None,
    ) -> None:
        """Fold a client round's buffered events (``{"kind", "sim_time",
        "fields"}`` dicts, possibly produced in a worker process) into this
        recorder, stamping round/client ids and sequence numbers."""

    # -- metrics -------------------------------------------------------
    def counter(self, name: str, inc: float = 1) -> None:
        """Add ``inc`` to a monotonically increasing counter."""

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge."""

    # -- lifecycle -----------------------------------------------------
    def flush(self) -> None:
        """Flush any buffered sink output."""

    def close(self) -> None:
        """Flush and release sink resources. Idempotent."""

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullRecorder(Recorder):
    """The default sink: drops everything, costs (almost) nothing."""

    enabled = False


#: Shared default instance — stateless, safe to reuse across simulators.
NULL_RECORDER = NullRecorder()


class TraceRecorder(Recorder):
    """In-memory ring buffer + metrics registry + optional streaming sink.

    Parameters
    ----------
    capacity:
        Ring size; the oldest events fall off first (``dropped_events``
        counts them). The streaming sink, if any, still receives every
        event.
    trace_path:
        Stream every event to this file as one JSON object per line
        (a :class:`~repro.obs.sinks.JsonlSink`; wrapped in a
        :class:`~repro.obs.sinks.BufferedSink` when ``buffered=True``).
    sink:
        An explicit :class:`~repro.obs.sinks.Sink` instead of
        ``trace_path`` — binary, rotating, buffered, or custom pipelines
        (see :mod:`repro.obs.sinks`). Mutually exclusive with
        ``trace_path``.
    buffered:
        Wrap the ``trace_path`` sink in a background-flushed
        :class:`~repro.obs.sinks.BufferedSink` (``block`` policy, so the
        written stream stays byte-identical to the synchronous one).
    wall_clock:
        Also stamp events with ``time.monotonic()``. Off by default so
        traces are reproducible byte-for-byte; determinism tests compare
        with wall-clock fields dropped.
    defer_sink:
        Do not open ``trace_path`` yet. Used by checkpoint resume
        (:mod:`repro.persist`): opening with ``"w"`` would truncate the
        first half of the trace, so the resume path restores the recorder
        state first and then calls :meth:`attach_sink` with the
        checkpointed byte offset.

    Crash safety
    ------------
    A recorder with a sink registers an ``atexit`` hook that flushes and
    closes it, and the simulator's run loop flushes the recorder in a
    ``finally`` block — so the trace written so far (and therefore any
    post-mortem ``--metrics-file`` dump the CLI emits from its own
    ``finally``) survives exceptions and normal interpreter death. Only a
    hard kill (SIGKILL) can lose the tail past the last flush; the
    checkpoint/resume layer is the recovery story there.
    """

    enabled = True

    def __init__(
        self,
        *,
        capacity: int = 100_000,
        trace_path: str | None = None,
        sink: Sink | None = None,
        buffered: bool = False,
        wall_clock: bool = False,
        defer_sink: bool = False,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sink is not None and trace_path is not None:
            raise ValueError("pass trace_path or sink, not both")
        self.capacity = capacity
        self.wall_clock = wall_clock
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped_events = 0
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._trace_path = trace_path
        self._buffered = buffered
        self._sink: Sink | None = None
        self._closed = False
        self._atexit_registered = False
        if sink is not None:
            self._adopt_sink(sink)
        elif trace_path and not defer_sink:
            self._adopt_sink(self._build_path_sink(trace_path))

    # ------------------------------------------------------------------
    def _build_path_sink(self, path: str, *, offset: int | None = None) -> Sink:
        inner: Sink = JsonlSink(path, resume_offset=offset)
        if self._buffered:
            inner = BufferedSink(inner)
        return inner

    def _adopt_sink(self, sink: Sink) -> None:
        self._sink = sink
        # Lossy buffered sinks account their drops in the metrics registry
        # (and the registry shows a zero until something actually drops).
        if isinstance(sink, BufferedSink):
            if sink.on_drop is None:
                sink.on_drop = lambda n: self.counter(TRACE_DROPPED_TOTAL, n)
            if sink.policy == "drop_oldest":
                self.counters.setdefault(TRACE_DROPPED_TOTAL, 0)
        if not self._atexit_registered:
            # Crash safety: flush+close the sink even if nobody calls
            # close() before the interpreter exits (unregistered on close).
            atexit.register(self.close)
            self._atexit_registered = True

    # ------------------------------------------------------------------
    def _record(
        self,
        kind: str,
        sim_time: float,
        round_index: int | None,
        client_id: int | None,
        fields: dict[str, Any],
    ) -> None:
        event = TraceEvent(
            seq=self._seq,
            kind=kind,
            sim_time=float(sim_time),
            round_index=round_index,
            client_id=client_id,
            fields=fields,
            # Opt-in wall stamps live in a separate field the deterministic
            # byte stream drops (TraceEvent.as_dict); they never touch
            # simulated time.
            wall_time=time.monotonic() if self.wall_clock else None,  # reprolint: allow[DET002] opt-in wall_clock stamp, dropped from the deterministic stream
        )
        self._seq += 1
        if len(self._ring) == self.capacity:
            self.dropped_events += 1
        self._ring.append(event)
        if self._sink is not None:
            self._sink.write(event)

    def emit(
        self,
        kind: str,
        *,
        sim_time: float,
        round_index: int | None = None,
        client_id: int | None = None,
        **fields: Any,
    ) -> None:
        self._record(kind, sim_time, round_index, client_id, fields)

    def span(
        self,
        kind: str,
        *,
        sim_start: float,
        sim_end: float,
        round_index: int | None = None,
        client_id: int | None = None,
        **fields: Any,
    ) -> None:
        fields["duration"] = float(sim_end) - float(sim_start)
        self._record(kind, sim_start, round_index, client_id, fields)

    def merge_client_trace(
        self,
        round_index: int,
        client_id: int,
        trace: Iterable[dict[str, Any]] | None,
    ) -> None:
        if not trace:
            return
        for raw in trace:
            self._record(
                raw["kind"],
                raw["sim_time"],
                round_index,
                client_id,
                raw.get("fields", {}),
            )

    # ------------------------------------------------------------------
    def counter(self, name: str, inc: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + inc

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        """Total events recorded (including any dropped from the ring)."""
        return self._seq

    @property
    def sink_dropped_events(self) -> int:
        """Events a lossy buffered sink discarded (0 for other sinks)."""
        return int(getattr(self._sink, "dropped_events", 0))

    @property
    def sink(self) -> Sink | None:
        """The attached streaming sink, if any."""
        return self._sink

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Events currently in the ring, optionally filtered by kind."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e.kind == kind]

    # ------------------------------------------------------------------
    # Checkpoint/resume hooks (see repro.persist). The trace oracle —
    # first-half trace + resumed trace must be byte-identical to an
    # uninterrupted run's — needs the sequence counter, the metrics
    # registry, and the durable sink position to survive the restart.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-safe snapshot of counters, gauges, sequence state and the
        flushed sink byte offset (everything a resumed recorder needs to
        continue the stream seamlessly). The ring content is *not*
        captured — ``num_events`` still accounts for pre-resume events."""
        self.flush()
        snapshot: dict = {
            "seq": self._seq,
            "dropped_events": self.dropped_events,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }
        if self._sink is not None:
            offset = self._sink.sync()
            if offset is not None:
                snapshot["sink_offset"] = offset
        return snapshot

    def restore_state(self, snapshot: dict) -> None:
        """Inverse of :meth:`snapshot_state` (sink handling is separate —
        see :meth:`attach_sink`)."""
        self._seq = int(snapshot["seq"])
        self.dropped_events = int(snapshot["dropped_events"])
        self.counters = {k: float(v) for k, v in snapshot["counters"].items()}
        self.gauges = {k: float(v) for k, v in snapshot["gauges"].items()}

    def attach_sink(self, *, offset: int | None = None) -> None:
        """Open a sink deferred at construction (``defer_sink=True``).

        With ``offset`` and an existing file, the file is truncated to the
        checkpointed position first — discarding any events a crashed
        process managed to flush past its last checkpoint — and appending
        resumes from there. Otherwise the file is created fresh. No-op if
        no ``trace_path`` was configured or a sink is already open.
        """
        if self._trace_path is None or self._sink is not None:
            return
        self._adopt_sink(self._build_path_sink(self._trace_path, offset=offset))

    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._atexit_registered:
            self._atexit_registered = False
            try:
                atexit.unregister(self.close)
            except Exception:  # pragma: no cover - interpreter teardown
                pass
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
