"""Trace/metrics exporters: JSONL, Prometheus-style text, summary table.

The JSONL sink streams during the run (see
:class:`~repro.obs.recorder.TraceRecorder`); the functions here export a
finished recorder's state after the fact — CI jobs and the CLI use them.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .recorder import TraceRecorder

__all__ = [
    "events_to_jsonl",
    "write_trace_jsonl",
    "metrics_to_text",
    "write_metrics_text",
    "summary_table",
]

#: Metric-name → Prometheus type, inferred from the conventional suffix.
_COUNTER_SUFFIX = "_total"


def events_to_jsonl(recorder, *, drop_wall_clock: bool = True) -> str:
    """The ring's events as one JSON object per line (oldest first).

    Accepts a :class:`~repro.obs.recorder.TraceRecorder` or any iterable
    of :class:`~repro.obs.events.TraceEvent`.
    """
    events = recorder.events() if hasattr(recorder, "events") else recorder
    return "".join(
        json.dumps(e.as_dict(drop_wall_clock=drop_wall_clock), sort_keys=True) + "\n"
        for e in events
    )


def write_trace_jsonl(recorder: "TraceRecorder", path: str) -> None:
    with open(path, "w") as fh:
        fh.write(events_to_jsonl(recorder))


def metrics_to_text(recorder: "TraceRecorder") -> str:
    """Prometheus-style text exposition of the counters and gauges.

    Names are sorted so the dump is deterministic; counters follow the
    ``*_total`` naming convention and are typed accordingly. Labelled
    series (``repro_ipc_bytes_total{transport=...,direction=...}``) share
    one ``# TYPE`` line per metric family, as the exposition format
    requires.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def _append(name: str, kind: str, value: float) -> None:
        family = name.split("{", 1)[0]
        if family not in typed:
            typed.add(family)
            lines.append(f"# TYPE {family} {kind}")
        lines.append(f"{name} {_fmt(value)}")

    for name in sorted(recorder.counters):
        _append(name, "counter", recorder.counters[name])
    for name in sorted(recorder.gauges):
        _append(name, "gauge", recorder.gauges[name])
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def write_metrics_text(recorder: "TraceRecorder", path: str) -> None:
    with open(path, "w") as fh:
        fh.write(metrics_to_text(recorder))


def summary_table(recorder: "TraceRecorder") -> str:
    """Fixed-width per-run summary of every counter and gauge."""
    rows = [("metric", "type", "value")]
    for name in sorted(recorder.counters):
        rows.append((name, "counter", _fmt(recorder.counters[name])))
    for name in sorted(recorder.gauges):
        rows.append((name, "gauge", _fmt(recorder.gauges[name])))
    rows.append(
        ("trace_events", "info", f"{recorder.num_events} "
         f"({recorder.dropped_events} dropped from ring)")
    )
    widths = [max(len(r[i]) for r in rows) for i in range(3)]
    lines = ["Telemetry summary"]
    for j, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
