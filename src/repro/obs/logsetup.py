"""One-stop logging configuration for the ``repro.*`` logger namespace.

Library modules obtain loggers with ``logging.getLogger("repro.<mod>")``
and never configure handlers themselves; the CLI (or an embedding
application) calls :func:`configure_logging` exactly once per invocation.
Default format is the bare message on stdout so CLI output is unchanged
from the historical ``print`` behaviour; ``debug`` level switches to a
prefixed format for diagnosis.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure_logging", "LOG_LEVELS"]

LOG_LEVELS = ("debug", "info", "warning", "error")


def configure_logging(level: str = "info") -> logging.Logger:
    """(Re)configure the ``repro`` root logger and return it.

    Idempotent per call: existing handlers are replaced, so repeated CLI
    invocations in one process (tests) don't stack duplicate output. The
    handler binds the *current* ``sys.stdout`` so capture fixtures work.
    """
    key = level.strip().lower()
    if key not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; expected one of {LOG_LEVELS}")
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, key.upper()))
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stdout)
    fmt = "%(message)s" if key != "debug" else "%(levelname)s %(name)s: %(message)s"
    handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(handler)
    logger.propagate = False
    return logger
