"""Canonical metric-name registry.

Every counter or gauge the runtime mirrors into a
:class:`~repro.obs.recorder.Recorder` must be declared here first.  The
registry is the machine-checked half of the metrics discipline that the
resume oracle (:mod:`repro.persist`) relies on:

* **Counters** are monotone, deterministic series.  Their names end in
  ``_total`` (Prometheus convention) and they may never carry wall-clock
  quantities — a crash-resumed run must reproduce them bit-for-bit.
* **Gauges** are point-in-time values.  Wall-clock mirrors (phase
  timings, broadcast staging cost) must be gauges, never counters,
  because wall time is not deterministic and would break the resume
  oracle's counter comparison.

Enforced statically by ``repro.lint`` (MET001/MET002: literal names at
``.counter()``/``.gauge()`` call sites must be registered here) and at
runtime by the sanitizer (:mod:`repro.lint.sanitize`, which validates
every registry write when ``--sanitize``/``REPRO_SANITIZE=1`` is on).

Labelled series (``repro_ipc_bytes_total{transport="shm",...}``) are
registered by their *base* name — the part before the ``{``.
"""

from __future__ import annotations

__all__ = ["KNOWN_COUNTERS", "KNOWN_GAUGES", "metric_base_name"]

#: Monotone counters; names end ``_total``, values are deterministic.
KNOWN_COUNTERS: frozenset[str] = frozenset(
    {
        # round loop (simulator)
        "repro_rounds_total",
        "repro_client_rounds_total",
        "repro_iterations_total",
        "repro_bytes_uploaded_total",
        "repro_dropped_clients_total",
        # FedCA decisions
        "repro_anchor_rounds_total",
        "repro_early_stops_total",
        "repro_eager_transmits_total",
        "repro_retransmissions_total",
        # result cache (experiments.runner)
        "repro_result_cache_hits_total",
        "repro_result_cache_misses_total",
        # flight-recorder pipeline (obs.sinks)
        "repro_trace_dropped_total",
        # cohort executor
        "repro_cohort_steps_total",
        "repro_cohort_member_steps_total",
        # lazy population paging (repro.scale): cache evictions and
        # snapshot-backed rehydrations. Deterministic per engine but
        # engine-dependent (each parallel worker pages its own cache) and
        # not checkpointed — never compared by the resume oracle.
        "repro_population_evictions_total",
        "repro_population_rehydrations_total",
        # IPC transports (labelled: {transport=...,direction=...})
        "repro_ipc_bytes_total",
        # compressed wire transport (labelled: {variant="raw"|"wire"} —
        # raw is the counterfactual uncompressed cost, wire what moved)
        "repro_wire_bytes_total",
    }
)

#: Point-in-time gauges; wall-clock mirrors live here, never in counters.
KNOWN_GAUGES: frozenset[str] = frozenset(
    {
        "repro_sim_time_seconds",
        "repro_round_accuracy",
        "repro_round_mean_loss",
        "repro_cohort_size",
        # lazy population paging: live clients in the resident cache, and
        # the process peak RSS (an OS measurement, hence a gauge).
        "repro_resident_clients",
        "repro_population_rss_bytes",
        # wall-clock mirrors — gauges by decree (resume oracle)
        "repro_ipc_broadcast_seconds",
        "repro_phase_seconds",
    }
)


def metric_base_name(name: str) -> str:
    """Strip a Prometheus label set: ``foo_total{a="b"}`` → ``foo_total``."""
    return name.split("{", 1)[0]
