"""Live metrics endpoint: watch a long run without waiting for it.

:class:`MetricsServer` wraps a :class:`~repro.obs.recorder.TraceRecorder`
in a stdlib threaded HTTP server (no third-party dependencies) serving:

* ``GET /metrics`` — the Prometheus text exposition of every counter and
  gauge (:func:`~repro.obs.export.metrics_to_text`), scrape-ready.
* ``GET /status`` (also ``/``) — a JSON run-status document: current
  round, simulated clock, trace-event throughput (since the previous
  status request), drop accounting, and the full counter/gauge registries
  (cache hits, IPC bytes, cohort occupancy, …).

The server runs on a daemon thread and reads the recorder's registries
without locks — the producer is single-threaded and dict reads are
GIL-atomic; the rare resize-during-iteration ``RuntimeError`` is retried.
It observes the run, it never mutates it: attaching the endpoint cannot
change a history or a trace byte.

Opt in from the CLI with ``--metrics-port N`` (0 picks a free port, the
chosen one is logged)::

    repro run --workload cnn --scheme fedca --metrics-port 9090 &
    curl localhost:9090/metrics
    curl localhost:9090/status | python -m json.tool
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from .export import metrics_to_text
from .sinks import TRACE_DROPPED_TOTAL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .recorder import TraceRecorder

__all__ = ["MetricsServer"]


def _snapshot(registry: dict) -> dict:
    """Copy a registry the producer may be mutating concurrently."""
    for _ in range(5):
        try:
            return dict(registry)
        except RuntimeError:  # pragma: no cover - resize mid-copy
            continue
    return {}  # pragma: no cover - persistent contention


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.server.metrics.metrics_text().encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path in ("/", "/status"):
            body = (
                json.dumps(self.server.metrics.status(), sort_keys=True) + "\n"
            ).encode("utf-8")
            ctype = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics or /status)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence per-request stderr spam
        pass


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    metrics: "MetricsServer"


class MetricsServer:
    """Serve a recorder's registries over HTTP while a run is live.

    Parameters
    ----------
    recorder:
        The :class:`~repro.obs.recorder.TraceRecorder` to expose.
    port:
        TCP port; 0 (default) binds a free one — read :attr:`port` after
        construction.
    host:
        Bind address; loopback by default (this is a debugging endpoint,
        not a public service).
    """

    def __init__(
        self,
        recorder: "TraceRecorder",
        *,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.recorder = recorder
        self._httpd = _Server((host, port), _Handler)
        self._httpd.metrics = self
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()  # reprolint: allow[DET002] read-only uptime display on /status; never feeds the run
        self._last_sample = (self._started_at, self._num_events())
        self._closed = False

    # ------------------------------------------------------------------
    def _num_events(self) -> int:
        return int(getattr(self.recorder, "num_events", 0))

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Begin serving on a daemon thread (idempotent)."""
        if self._thread is None and not self._closed:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """The Prometheus text body served at ``/metrics``."""
        return metrics_to_text(self.recorder)

    def status(self) -> dict:
        """The JSON run-status document served at ``/status``."""
        now = time.monotonic()  # reprolint: allow[DET002] events/sec window for /status; read-only, off the run path
        events = self._num_events()
        last_t, last_n = self._last_sample
        self._last_sample = (now, events)
        window = now - last_t
        uptime = now - self._started_at
        counters = _snapshot(getattr(self.recorder, "counters", {}))
        gauges = _snapshot(getattr(self.recorder, "gauges", {}))
        return {
            "round": int(counters.get("repro_rounds_total", 0)),
            "sim_time_seconds": float(
                gauges.get("repro_sim_time_seconds", 0.0)
            ),
            "trace_events": events,
            "events_per_sec": (
                (events - last_n) / window if window > 0 else 0.0
            ),
            "events_per_sec_avg": events / uptime if uptime > 0 else 0.0,
            "uptime_seconds": uptime,
            "ring_dropped_events": int(
                getattr(self.recorder, "dropped_events", 0)
            ),
            "sink_dropped_events": int(counters.get(TRACE_DROPPED_TOTAL, 0)),
            "counters": counters,
            "gauges": gauges,
        }
