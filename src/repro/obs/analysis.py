"""Trace-only reconstructions of the paper's per-client analyses.

These helpers consume a trace (a list of :class:`~repro.obs.events.
TraceEvent` or their ``as_dict`` forms) and rebuild the Fig. 8-style
decision distributions without touching the
:class:`~repro.runtime.history.RunHistory` — the acceptance check that the
telemetry layer captures *why* each client stopped/transmitted, not just
end-of-round summaries.

Every reconstruction first validates the trace for overflow: events carry
monotone sequence numbers, so a ring that wrapped (``TraceRecorder``
``dropped_events``) or a lossy buffered sink (``drop_oldest`` backpressure)
leaves gaps. Computing a CDF from a silently truncated trace would be
quietly wrong, so these helpers raise :class:`TruncatedTraceError` with a
remediation hint instead.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "TruncatedTraceError",
    "validate_trace_complete",
    "early_stop_iterations",
    "eager_iterations",
    "client_iteration_counts",
]


class TruncatedTraceError(ValueError):
    """The trace lost events (ring wrap or lossy sink backpressure).

    Raised by the analysis helpers instead of silently computing a
    distribution from a partial trace.
    """


def _as_dicts(events: Iterable[Any]) -> list[dict[str, Any]]:
    return [e.as_dict() if hasattr(e, "as_dict") else e for e in events]


def validate_trace_complete(dicts: list[dict[str, Any]]) -> None:
    """Raise :class:`TruncatedTraceError` if sequence numbers show a loss.

    A complete trace starts at ``seq == 0`` and is gap-free. A nonzero
    first seq means the recorder ring wrapped (events fell off the front);
    an interior gap means a lossy sink (``BufferedSink`` with
    ``drop_oldest``) discarded events under backpressure. Events without a
    ``seq`` field (e.g. hand-built dicts in unit tests) are not checked.
    """
    seqs = sorted(
        int(e["seq"]) for e in dicts if isinstance(e, dict) and "seq" in e
    )
    if not seqs:
        return
    if seqs[0] != 0:
        raise TruncatedTraceError(
            f"trace is truncated: first event has seq={seqs[0]}, so "
            f"{seqs[0]} earlier events were dropped (recorder ring "
            "overflow). Re-run with a larger TraceRecorder capacity= or "
            "stream the full run to disk with trace_path=/a streaming sink."
        )
    for prev, cur in zip(seqs, seqs[1:]):
        if cur > prev + 1:
            raise TruncatedTraceError(
                f"trace has a gap: seq jumps {prev} -> {cur} "
                f"({cur - prev - 1} events missing — lossy sink "
                "backpressure, see repro_trace_dropped_total). Use "
                'BufferedSink(policy="block") or a larger sink capacity= '
                "to keep the trace lossless."
            )


def early_stop_iterations(events: Iterable[Any]) -> list[int]:
    """Early-stop trigger iterations across rounds/clients (Fig. 8a).

    Matches :meth:`repro.runtime.history.RunHistory.early_stop_iterations`
    when reconstructed from the same run's trace.
    """
    dicts = _as_dicts(events)
    validate_trace_complete(dicts)
    return [
        int(e["fields"]["tau"])
        for e in dicts
        if e["kind"] == "fedca.earlystop.stop" and e["fields"]["early"]
    ]


def eager_iterations(events: Iterable[Any], *, effective: bool) -> list[int]:
    """Eager-transmission trigger iterations per layer (Fig. 8b).

    With ``effective=True`` a retransmitted layer counts at the round's
    final iteration (the paper's "w/ retransmission" CDF); matches
    :meth:`repro.runtime.history.RunHistory.eager_iterations`.
    """
    dicts = _as_dicts(events)
    validate_trace_complete(dicts)
    final_iters = {
        (e["round"], e["client"]): int(e["fields"]["iterations_run"])
        for e in dicts
        if e["kind"] == "client.round"
    }
    retransmitted = {
        (e["round"], e["client"], e["fields"]["layer"])
        for e in dicts
        if e["kind"] == "fedca.retransmit" and e["fields"]["deviated"]
    }
    out: list[int] = []
    for e in dicts:
        if e["kind"] != "fedca.eager":
            continue
        key = (e["round"], e["client"])
        tau = int(e["fields"]["tau"])
        if effective and (*key, e["fields"]["layer"]) in retransmitted:
            out.append(final_iters.get(key, tau))
        else:
            out.append(tau)
    return out


def client_iteration_counts(events: Iterable[Any]) -> dict[int, list[int]]:
    """Per-client executed-iteration counts, one entry per round the client
    ran (anchor rounds included) — the raw series behind Fig. 8's CDFs."""
    dicts = _as_dicts(events)
    validate_trace_complete(dicts)
    out: dict[int, list[int]] = {}
    for e in dicts:
        if e["kind"] == "client.round":
            out.setdefault(int(e["client"]), []).append(
                int(e["fields"]["iterations_run"])
            )
    return out
