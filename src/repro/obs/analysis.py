"""Trace-only reconstructions of the paper's per-client analyses.

These helpers consume a trace (a list of :class:`~repro.obs.events.
TraceEvent` or their ``as_dict`` forms) and rebuild the Fig. 8-style
decision distributions without touching the
:class:`~repro.runtime.history.RunHistory` — the acceptance check that the
telemetry layer captures *why* each client stopped/transmitted, not just
end-of-round summaries.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "early_stop_iterations",
    "eager_iterations",
    "client_iteration_counts",
]


def _as_dicts(events: Iterable[Any]) -> list[dict[str, Any]]:
    return [e.as_dict() if hasattr(e, "as_dict") else e for e in events]


def early_stop_iterations(events: Iterable[Any]) -> list[int]:
    """Early-stop trigger iterations across rounds/clients (Fig. 8a).

    Matches :meth:`repro.runtime.history.RunHistory.early_stop_iterations`
    when reconstructed from the same run's trace.
    """
    return [
        int(e["fields"]["tau"])
        for e in _as_dicts(events)
        if e["kind"] == "fedca.earlystop.stop" and e["fields"]["early"]
    ]


def eager_iterations(events: Iterable[Any], *, effective: bool) -> list[int]:
    """Eager-transmission trigger iterations per layer (Fig. 8b).

    With ``effective=True`` a retransmitted layer counts at the round's
    final iteration (the paper's "w/ retransmission" CDF); matches
    :meth:`repro.runtime.history.RunHistory.eager_iterations`.
    """
    dicts = _as_dicts(events)
    final_iters = {
        (e["round"], e["client"]): int(e["fields"]["iterations_run"])
        for e in dicts
        if e["kind"] == "client.round"
    }
    retransmitted = {
        (e["round"], e["client"], e["fields"]["layer"])
        for e in dicts
        if e["kind"] == "fedca.retransmit" and e["fields"]["deviated"]
    }
    out: list[int] = []
    for e in dicts:
        if e["kind"] != "fedca.eager":
            continue
        key = (e["round"], e["client"])
        tau = int(e["fields"]["tau"])
        if effective and (*key, e["fields"]["layer"]) in retransmitted:
            out.append(final_iters.get(key, tau))
        else:
            out.append(tau)
    return out


def client_iteration_counts(events: Iterable[Any]) -> dict[int, list[int]]:
    """Per-client executed-iteration counts, one entry per round the client
    ran (anchor rounds included) — the raw series behind Fig. 8's CDFs."""
    out: dict[int, list[int]] = {}
    for e in _as_dicts(events):
        if e["kind"] == "client.round":
            out.setdefault(int(e["client"]), []).append(
                int(e["fields"]["iterations_run"])
            )
    return out
