"""Trace-event schema for the runtime telemetry layer.

Every event is keyed on **simulated time** (the federated clock the
simulator advances), never wall-clock, so a trace is a deterministic
function of the run configuration: serial and parallel executors produce
byte-identical event streams (``tests/test_executor.py`` asserts this).
Wall-clock capture is opt-in (:class:`~repro.obs.recorder.TraceRecorder`
``wall_clock=True``) and lands in the separate ``wall_time`` field so
deterministic comparisons can simply drop it.

Event kinds (``fields`` payload in parentheses):

Run / round lifecycle — emitted by the simulator in the parent process:

* ``run.client_meta`` — one per client at simulator construction
  (``num_samples``, ``model_bytes``, ``base_pace``).
* ``run.start`` — one per training run from the experiment runner
  (``scheme``, ``workload``, ``executor``).
* ``round.start`` (``selected``, ``num_selected``, ``deadline``).
* ``client.dropped`` — failure injection removed the client mid-round.
* ``round.all_dropped`` — every selected client dropped; the round stalls.
* ``client.round`` — one span per surviving client (``compute_start``,
  ``compute_finish``, ``upload_finish``, ``duration``, ``iterations_run``,
  ``bytes_uploaded``, ``mean_loss``, ``collected``).
* ``round.end`` (``accuracy``, ``mean_loss``, ``num_collected``,
  ``num_stragglers``, ``total_bytes``, ``duration``).

FedCA decision introspection — recorded client-side (possibly inside a
worker process), forwarded on the :class:`~repro.runtime.round.
ClientRoundResult` and merged into the parent recorder in client-id order:

* ``fedca.anchor`` — anchor-round profiling cost (§4.1/§5.5:
  ``iterations``, ``profiling_bytes``, ``sampled_scalars``,
  ``sampled_layers``).
* ``fedca.earlystop.eval`` — one per optimised-round iteration: the Eq. 2–4
  terms (``tau``, ``b``, ``c``, ``n``, ``elapsed``, ``stop``, ``reason``).
* ``fedca.earlystop.stop`` — terminal decision for the round (``tau``,
  ``reason``, ``early``).
* ``fedca.eager`` — a layer crossed ``T_e`` and was queued on the uplink
  (``layer``, ``tau``, ``trigger``, ``bytes``).
* ``fedca.retransmit`` — Eq. 6 error-feedback check outcome per eagerly
  transmitted layer (``layer``, ``cosine``, ``deviated``, ``bytes``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["TraceEvent", "EVENT_KINDS"]

#: Known event kinds (documentation + schema validation in tests).
EVENT_KINDS = (
    "run.client_meta",
    "run.start",
    "round.start",
    "client.dropped",
    "round.all_dropped",
    "client.round",
    "round.end",
    "fedca.anchor",
    "fedca.earlystop.eval",
    "fedca.earlystop.stop",
    "fedca.eager",
    "fedca.retransmit",
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured telemetry record.

    ``seq`` is assigned by the recorder at emission/merge time and is a
    deterministic total order (simulated causality), independent of which
    process produced the event.
    """

    seq: int
    kind: str
    sim_time: float
    round_index: int | None
    client_id: int | None
    fields: dict[str, Any]
    wall_time: float | None = None

    def as_dict(self, *, drop_wall_clock: bool = True) -> dict[str, Any]:
        """Plain-data form used by the JSONL exporter and determinism
        tests. ``drop_wall_clock=True`` (default) omits ``wall_time`` so
        two traces of the same run compare equal."""
        out: dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "sim_time": self.sim_time,
            "round": self.round_index,
            "client": self.client_id,
            "fields": self.fields,
        }
        if not drop_wall_clock and self.wall_time is not None:
            out["wall_time"] = self.wall_time
        return out
