"""``repro.obs`` — runtime telemetry: structured tracing, metrics, logging.

The observability substrate every layer reports through (DESIGN.md §9, §13):

* :class:`Recorder` / :class:`NullRecorder` / :class:`TraceRecorder` —
  the sink protocol, the zero-overhead default, and the bounded-ring
  implementation with a pluggable streaming sink.
* :mod:`repro.obs.sinks` — the flight-recorder pipeline: JSONL, compact
  binary, rotating-file, and background-flushed buffered sinks with
  explicit backpressure policies.
* :mod:`repro.obs.profile` — hierarchical wall-clock phase profiler with
  per-round percent breakdowns and ``repro_phase_seconds`` gauges.
* :mod:`repro.obs.server` — opt-in live HTTP endpoint (``/metrics`` +
  ``/status``) for watching long runs.
* :mod:`repro.obs.events` — the deterministic, simulated-time event schema.
* :mod:`repro.obs.export` — JSONL / Prometheus-text / summary-table dumps.
* :mod:`repro.obs.analysis` — Fig. 8-style reconstructions from a trace
  (with dropped-event/overflow detection).
* :func:`configure_logging` — the single ``repro.*`` logging entry point.
"""

from .analysis import (
    TruncatedTraceError,
    client_iteration_counts,
    eager_iterations,
    early_stop_iterations,
)
from .events import EVENT_KINDS, TraceEvent
from .export import (
    events_to_jsonl,
    metrics_to_text,
    summary_table,
    write_metrics_text,
    write_trace_jsonl,
)
from .logsetup import LOG_LEVELS, configure_logging
from .metrics import KNOWN_COUNTERS, KNOWN_GAUGES, metric_base_name
from .profile import (
    NULL_PROFILER,
    PHASE_SECONDS,
    NullPhaseProfiler,
    PhaseProfiler,
    phase_gauge_name,
)
from .recorder import NULL_RECORDER, NullRecorder, Recorder, TraceRecorder
from .server import MetricsServer
from .sinks import (
    BACKPRESSURE_POLICIES,
    TRACE_DROPPED_TOTAL,
    BinarySink,
    BufferedSink,
    JsonlSink,
    RotatingFileSink,
    Sink,
    SinkError,
    read_binary_trace,
)

__all__ = [
    "Recorder",
    "NullRecorder",
    "TraceRecorder",
    "NULL_RECORDER",
    "TraceEvent",
    "EVENT_KINDS",
    "Sink",
    "JsonlSink",
    "BinarySink",
    "RotatingFileSink",
    "BufferedSink",
    "SinkError",
    "read_binary_trace",
    "BACKPRESSURE_POLICIES",
    "TRACE_DROPPED_TOTAL",
    "PhaseProfiler",
    "NullPhaseProfiler",
    "NULL_PROFILER",
    "PHASE_SECONDS",
    "phase_gauge_name",
    "MetricsServer",
    "events_to_jsonl",
    "write_trace_jsonl",
    "metrics_to_text",
    "write_metrics_text",
    "summary_table",
    "early_stop_iterations",
    "eager_iterations",
    "client_iteration_counts",
    "TruncatedTraceError",
    "configure_logging",
    "LOG_LEVELS",
    "KNOWN_COUNTERS",
    "KNOWN_GAUGES",
    "metric_base_name",
]
