"""``repro.obs`` — runtime telemetry: structured tracing, metrics, logging.

The observability substrate every layer reports through (DESIGN.md §9):

* :class:`Recorder` / :class:`NullRecorder` / :class:`TraceRecorder` —
  the sink protocol, the zero-overhead default, and the bounded-ring
  implementation with a streaming JSONL sink.
* :mod:`repro.obs.events` — the deterministic, simulated-time event schema.
* :mod:`repro.obs.export` — JSONL / Prometheus-text / summary-table dumps.
* :mod:`repro.obs.analysis` — Fig. 8-style reconstructions from a trace.
* :func:`configure_logging` — the single ``repro.*`` logging entry point.
"""

from .analysis import (
    client_iteration_counts,
    eager_iterations,
    early_stop_iterations,
)
from .events import EVENT_KINDS, TraceEvent
from .export import (
    events_to_jsonl,
    metrics_to_text,
    summary_table,
    write_metrics_text,
    write_trace_jsonl,
)
from .logsetup import LOG_LEVELS, configure_logging
from .recorder import NULL_RECORDER, NullRecorder, Recorder, TraceRecorder

__all__ = [
    "Recorder",
    "NullRecorder",
    "TraceRecorder",
    "NULL_RECORDER",
    "TraceEvent",
    "EVENT_KINDS",
    "events_to_jsonl",
    "write_trace_jsonl",
    "metrics_to_text",
    "write_metrics_text",
    "summary_table",
    "early_stop_iterations",
    "eager_iterations",
    "client_iteration_counts",
    "configure_logging",
    "LOG_LEVELS",
]
