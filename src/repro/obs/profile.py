"""Hierarchical wall-clock phase profiler for the runtime.

Where the event trace is keyed on *simulated* time (and therefore
deterministic), this module measures where the *wall clock* actually goes:
``select``, ``broadcast``, ``client.train``, ``collect``, ``aggregate``,
``evaluate``, ``checkpoint``, plus transport sub-spans — instrumented
through the simulator, both process executors, the cohort engine and the
shm transport (DESIGN.md §13).

Usage::

    prof = PhaseProfiler()
    sim = FederatedSimulator(..., profiler=prof)
    sim.run(rounds)
    print(prof.report())

Phases nest: opening ``phase("stage")`` while ``phase("broadcast")`` is
active records under the path ``broadcast/stage``. Depth-0 phases are the
per-round budget — each round's lap time is split across them plus an
explicit ``(untracked)`` remainder, so the percent-of-round breakdown sums
to 100 by construction (the acceptance check in ``tests/test_profile.py``
guards against double-counted or overlapping spans).

Wall-clock is inherently nondeterministic, so phase totals surface as
recorder *gauges* (``repro_phase_seconds{phase=...,executor=...}``), never
counters — the crash-resume oracle (:mod:`repro.persist`) compares counter
registries bitwise and must not see wall time (same rule as
``repro_ipc_broadcast_seconds``).

The default :data:`NULL_PROFILER` is disabled and allocation-free: every
``phase(...)`` returns one shared no-op context manager, so uninstrumented
runs pay a few attribute lookups per round.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = [
    "PhaseProfiler",
    "NullPhaseProfiler",
    "NULL_PROFILER",
    "PHASE_SECONDS",
    "phase_gauge_name",
]

#: Metric family for cumulative per-phase wall seconds.
PHASE_SECONDS = "repro_phase_seconds"

#: Canonical depth-0 phase order for reports (unknown phases append).
_PHASE_ORDER = (
    "select",
    "broadcast",
    "client.train",
    "collect",
    "aggregate",
    "evaluate",
    "telemetry",
    "checkpoint",
)

_UNTRACKED = "(untracked)"


def phase_gauge_name(phase: str, executor: str) -> str:
    """Gauge name for one phase path under one executor."""
    return f'{PHASE_SECONDS}{{phase="{phase}",executor="{executor}"}}'


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class _PhaseSpan:
    """Reusable-shape context manager for one open span."""

    __slots__ = ("_profiler", "_name", "_path", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        prof = self._profiler
        stack = prof._stack
        self._path = (
            f"{stack[-1]}/{self._name}" if stack else self._name
        )
        stack.append(self._path)
        self._start = prof._clock()
        return self

    def __exit__(self, *exc):
        prof = self._profiler
        elapsed = prof._clock() - self._start
        prof._stack.pop()
        totals = prof.totals
        totals[self._path] = totals.get(self._path, 0.0) + elapsed
        prof.counts[self._path] = prof.counts.get(self._path, 0) + 1
        return False


class PhaseProfiler:
    """Accumulates nested wall-clock spans and per-round breakdowns."""

    enabled = True

    def __init__(
        self,
        *,
        executor: str = "serial",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.executor_label = executor
        self._clock = clock
        self._stack: list[str] = []
        #: path -> cumulative inclusive seconds / span count.
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        #: One dict per completed round: depth-0 phase seconds +
        #: ``(untracked)`` + ``total`` (the round's wall-clock lap).
        self.rounds: list[dict[str, float]] = []
        self._round_start: float | None = None
        self._round_snapshot: dict[str, float] = {}

    # ------------------------------------------------------------------
    def set_executor_label(self, name: str) -> None:
        self.executor_label = name

    def phase(self, name: str):
        """Context manager timing one span (nested under any open span)."""
        return _PhaseSpan(self, name)

    # ------------------------------------------------------------------
    # Round laps: begin_round() closes the previous round (so work done
    # between rounds — checkpointing, progress callbacks — still lands in
    # a lap) and finish() closes the last one.
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        now = self._clock()
        if self._round_start is not None:
            self._close_round(now)
        self._round_start = now
        self._round_snapshot = {
            p: s for p, s in self.totals.items() if "/" not in p
        }

    def finish(self) -> None:
        """Close the open round lap, if any. Idempotent."""
        if self._round_start is not None:
            self._close_round(self._clock())
            self._round_start = None

    def _close_round(self, now: float) -> None:
        total = now - self._round_start
        snap = self._round_snapshot
        phases = {
            p: s - snap.get(p, 0.0)
            for p, s in self.totals.items()
            if "/" not in p and s - snap.get(p, 0.0) > 0.0
        }
        tracked = sum(phases.values())
        lap = dict(phases)
        lap[_UNTRACKED] = max(total - tracked, 0.0)
        lap["total"] = max(total, tracked)
        self.rounds.append(lap)

    # ------------------------------------------------------------------
    def mirror(self, recorder) -> None:
        """Publish cumulative phase seconds as recorder gauges."""
        if recorder is None or not getattr(recorder, "enabled", False):
            return
        label = self.executor_label
        for path, seconds in self.totals.items():
            recorder.gauge(
                phase_gauge_name(path.replace("/", "."), label), seconds
            )

    # ------------------------------------------------------------------
    def round_breakdowns(self) -> list[dict[str, float]]:
        """Per-round depth-0 phase seconds (``(untracked)`` + ``total``
        included); finishes the open lap first."""
        self.finish()
        return [dict(r) for r in self.rounds]

    @staticmethod
    def _ordered(paths) -> list[str]:
        known = [p for p in _PHASE_ORDER if p in paths]
        extra = sorted(p for p in paths if p not in _PHASE_ORDER)
        return known + extra

    def report(self) -> str:
        """Fixed-width per-run profile table (percent-of-run breakdown).

        Depth-0 rows plus ``(untracked)`` partition the profiled wall
        clock, so their percentages sum to 100; nested sub-spans are
        indented underneath their parent and counted *within* it.
        """
        self.finish()
        total = sum(r["total"] for r in self.rounds)
        n_rounds = len(self.rounds)
        header = (
            f"Phase profile — executor={self.executor_label}, "
            f"rounds={n_rounds}, profiled {total:.3f}s wall-clock"
        )
        if not self.rounds or total <= 0:
            return header + "\n  (no profiled rounds)"
        untracked = sum(r.get(_UNTRACKED, 0.0) for r in self.rounds)

        rows: list[tuple[str, float]] = []
        top = self._ordered({p for p in self.totals if "/" not in p})
        for path in top:
            rows.append((path, self.totals[path]))
            children = self._ordered(
                {
                    p
                    for p in self.totals
                    if p.startswith(path + "/")
                }
            )
            for child in children:
                depth = child.count("/")
                label = "  " * depth + child.rsplit("/", 1)[1]
                rows.append((label, self.totals[child]))
        rows.append((_UNTRACKED, untracked))

        table = [("phase", "seconds", "% of run", "s/round")]
        for label, seconds in rows:
            table.append(
                (
                    label,
                    f"{seconds:.3f}",
                    f"{100.0 * seconds / total:.1f}%",
                    f"{seconds / n_rounds:.4f}",
                )
            )
        table.append(("total", f"{total:.3f}", "100.0%", f"{total / n_rounds:.4f}"))
        widths = [max(len(r[i]) for r in table) for i in range(4)]
        lines = [header]
        for j, row in enumerate(table):
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
            if j == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


class NullPhaseProfiler(PhaseProfiler):
    """Disabled profiler: every hook is (nearly) free, nothing is recorded."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def phase(self, name: str):
        return _NULL_CONTEXT

    def begin_round(self) -> None:
        pass

    def finish(self) -> None:
        pass

    def mirror(self, recorder) -> None:
        pass

    def report(self) -> str:
        return "Phase profile disabled (pass profiler=PhaseProfiler() to enable)"


#: Shared default instance — stateless, safe to reuse across simulators.
NULL_PROFILER = NullPhaseProfiler()
