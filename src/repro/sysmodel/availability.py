"""Client availability / mid-round drop-out model (paper §3.1).

The paper motivates intra-round monitoring with availability data: ~70 % of
real devices stay available for at most 10 minutes — the same order as one
training round — so rounds routinely lose clients. This module provides the
drop-out substrate the simulator uses for failure injection: each selected
client independently drops out of a round with a configurable probability,
modelling the "extreme case of shrinking resource quantity".
"""

from __future__ import annotations

import numpy as np

__all__ = ["DropoutModel"]


class DropoutModel:
    """Per-round Bernoulli drop-outs, deterministic given (seed, round).

    A dropped client never reports an update that round (its device left
    mid-round); the server simply never receives it, exactly like an
    infinitely-late straggler under partial aggregation.
    """

    def __init__(self, rate: float, *, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.seed = seed

    def dropped(self, round_index: int, client_ids: list[int]) -> set[int]:
        """Subset of ``client_ids`` that drop out of this round."""
        if self.rate == 0.0 or not client_ids:
            return set()
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, round_index, 0xD0])
        )
        draws = rng.random(len(client_ids))
        return {cid for cid, d in zip(client_ids, draws) if d < self.rate}
