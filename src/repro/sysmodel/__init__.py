"""``repro.sysmodel`` — simulated-time device, dynamics and network models.

Replaces the paper's 128-node EC2 cluster: static heterogeneity comes from a
FedScale-like speed distribution, dynamicity from Γ-distributed fast/slow
toggling, and communication from a per-client bottleneck-uplink model.
"""

from .availability import DropoutModel
from .deadline import select_deadline
from .heterogeneity import (
    base_iteration_times,
    iteration_time_for,
    sample_speed_ratios,
)
from .network import DEFAULT_CLIENT_MBPS, LinkModel, Transmission, UplinkScheduler
from .speed import GAMMA_FAST, GAMMA_SLOW, SLOWDOWN_RANGE, SpeedTrace

__all__ = [
    "DropoutModel",
    "SpeedTrace",
    "GAMMA_FAST",
    "GAMMA_SLOW",
    "SLOWDOWN_RANGE",
    "sample_speed_ratios",
    "base_iteration_times",
    "iteration_time_for",
    "LinkModel",
    "UplinkScheduler",
    "Transmission",
    "DEFAULT_CLIENT_MBPS",
    "select_deadline",
]
