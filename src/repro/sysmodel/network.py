"""Per-client link model with overlap-aware upload scheduling.

The paper shapes every client's link to 13.7 Mbps (FedScale's average mobile
bandwidth) and gives the server a 10 Gbps link, so the client uplink is the
communication bottleneck. FedCA's eager transmission wins time by pushing
early-converged layers through that uplink *while the remaining layers are
still computing* (Fig. 6); what matters for round time is therefore the
serialisation of transfers on the single client uplink, which
:class:`UplinkScheduler` models exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LinkModel", "UplinkScheduler", "Transmission", "DEFAULT_CLIENT_MBPS"]

DEFAULT_CLIENT_MBPS = 13.7  # paper §5.1, FedScale average


@dataclass(frozen=True)
class LinkModel:
    """Static link capacities for one client.

    ``uplink_mbps``/``downlink_mbps`` are megabits per second. Transfer
    latency for ``n`` bytes is ``8 n / (mbps · 1e6)`` seconds plus a fixed
    per-message RPC overhead (RPyC marshalling in the paper's testbed).
    """

    uplink_mbps: float = DEFAULT_CLIENT_MBPS
    downlink_mbps: float = DEFAULT_CLIENT_MBPS
    rpc_overhead_s: float = 0.005

    def __post_init__(self) -> None:
        if self.uplink_mbps <= 0 or self.downlink_mbps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.rpc_overhead_s < 0:
            raise ValueError("rpc overhead must be non-negative")

    def upload_seconds(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.rpc_overhead_s + 8.0 * nbytes / (self.uplink_mbps * 1e6)

    def download_seconds(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.rpc_overhead_s + 8.0 * nbytes / (self.downlink_mbps * 1e6)


@dataclass(frozen=True)
class Transmission:
    """Record of one upload scheduled on a client uplink."""

    label: str
    nbytes: int
    submit_time: float
    start_time: float
    finish_time: float


@dataclass
class UplinkScheduler:
    """FIFO serialisation of uploads on a single client uplink.

    Eager per-layer transmissions and the end-of-round tail upload all go
    through :meth:`submit`; a transfer starts at ``max(submit, busy_until)``
    so overlapping requests queue rather than magically parallelise.
    """

    link: LinkModel
    busy_until: float = 0.0
    log: list[Transmission] = field(default_factory=list)

    def submit(self, submit_time: float, nbytes: int, label: str = "") -> Transmission:
        if submit_time < 0:
            raise ValueError("submit_time must be non-negative")
        start = max(submit_time, self.busy_until)
        finish = start + self.link.upload_seconds(nbytes)
        self.busy_until = finish
        tx = Transmission(label, nbytes, submit_time, start, finish)
        self.log.append(tx)
        return tx

    def reset(self, t: float = 0.0) -> None:
        """Clear the queue at the start of a round."""
        self.busy_until = t
        self.log.clear()

    @property
    def total_bytes(self) -> int:
        return sum(tx.nbytes for tx in self.log)
