"""FedBalancer-style round-deadline selection (paper Eq. 3 context).

The server picks the round deadline ``T_R`` that maximises the ratio of the
*estimated number of clients finishing before T* to ``T`` itself — "neither
too high to discourage early stopping, nor too low to collect enough
updates" (§4.2). The maximiser over a step function is always attained at
one of the estimated completion times, so the search is a linear scan over
the sorted estimates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["select_deadline"]


def select_deadline(
    estimated_completion_times: Sequence[float],
    *,
    min_fraction: float = 0.0,
) -> float:
    """Return the utility-maximising deadline.

    Parameters
    ----------
    estimated_completion_times:
        Server-side estimates of each selected client's full-round duration
        (download + K iterations + upload), typically carried over from the
        client's pace in the previous round.
    min_fraction:
        Optional floor on the fraction of clients that must be able to
        finish — deadlines covering fewer clients are skipped even if their
        ratio is higher. The aggregator needs enough updates to be useful;
        the simulator passes its partial-aggregation fraction here.

    Raises
    ------
    ValueError
        If the estimate list is empty or contains non-positive times.
    """
    times = np.asarray(list(estimated_completion_times), dtype=np.float64)
    if times.size == 0:
        raise ValueError("need at least one completion-time estimate")
    if np.any(times <= 0) or not np.all(np.isfinite(times)):
        raise ValueError("completion-time estimates must be positive and finite")
    if not 0.0 <= min_fraction <= 1.0:
        raise ValueError("min_fraction must be in [0, 1]")

    order = np.sort(times)
    n = order.size
    counts = np.arange(1, n + 1, dtype=np.float64)
    ratios = counts / order
    eligible = counts / n >= min_fraction
    if not eligible.any():
        # min_fraction = 1 with one extreme straggler: fall back to covering
        # everyone rather than failing the round.
        return float(order[-1])
    ratios = np.where(eligible, ratios, -np.inf)
    # Prefer the largest deadline among ties: equal utility, more updates.
    best = int(np.flatnonzero(ratios == ratios.max())[-1])
    return float(order[best])
