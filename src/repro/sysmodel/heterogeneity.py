"""Static cross-client heterogeneity (FedScale-like device speeds).

The paper maps each EC2 client to a device in the FedScale trace so that the
*ratio between any two clients' average speeds* resembles real mobile
hardware. The FedScale compute-speed distribution is heavy-tailed and spans
roughly an order of magnitude between fast and slow devices; we substitute a
truncated log-normal with matching spread, which preserves exactly the
property the experiments need — a stable population of persistent stragglers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sample_speed_ratios",
    "base_iteration_times",
    "iteration_time_for",
]

#: Domain-separation tag for per-client pace seed derivation (see
#: :func:`iteration_time_for`); keeps the pace stream independent of the
#: other per-cid streams derived from the same population seed.
_PACE_SEED_TAG = 0x9A


def sample_speed_ratios(
    num_clients: int,
    *,
    sigma: float = 0.6,
    max_ratio: float = 10.0,
    seed: int = 0,
) -> np.ndarray:
    """Per-client relative slowness factors, normalised so the fastest ≈ 1.

    Returns an array ``r`` with ``r.min() == 1`` and ``r.max() <= max_ratio``;
    client ``i`` needs ``r[i]`` times longer than the fastest client for the
    same iteration.
    """
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if max_ratio < 1:
        raise ValueError("max_ratio must be >= 1")
    rng = np.random.default_rng(seed)
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=num_clients)
    ratios = raw / raw.min()
    return np.minimum(ratios, max_ratio)


def base_iteration_times(
    num_clients: int,
    fastest_iteration_time: float,
    *,
    sigma: float = 0.6,
    max_ratio: float = 10.0,
    seed: int = 0,
) -> np.ndarray:
    """Seconds-per-iteration for each client at full speed.

    ``fastest_iteration_time`` is workload-dependent (bigger models cost
    more per iteration); heterogeneity scales it per client.
    """
    if fastest_iteration_time <= 0:
        raise ValueError("fastest_iteration_time must be positive")
    ratios = sample_speed_ratios(
        num_clients, sigma=sigma, max_ratio=max_ratio, seed=seed
    )
    return fastest_iteration_time * ratios


def iteration_time_for(
    cid: int,
    fastest_iteration_time: float,
    *,
    sigma: float = 0.6,
    max_ratio: float = 10.0,
    seed: int = 0,
) -> float:
    """Per-client lazy analogue of :func:`base_iteration_times`.

    :func:`base_iteration_times` normalises by the *population minimum*, so
    computing one client's pace requires drawing all of them — O(total
    clients), which the million-client scale path cannot afford. This
    variant draws each client's slowness factor independently from
    ``(seed, cid)``: the same truncated log-normal family, clipped to
    ``[1, max_ratio]`` instead of min-normalised. The spread and the stable
    stragglers — the properties the experiments need — are preserved; the
    exact values differ from the eager helper's, so the two must not be
    mixed within one run (the simulator derives every client of a run from
    a single pace source).
    """
    if fastest_iteration_time <= 0:
        raise ValueError("fastest_iteration_time must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if max_ratio < 1:
        raise ValueError("max_ratio must be >= 1")
    if cid < 0:
        raise ValueError("cid must be non-negative")
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, cid, _PACE_SEED_TAG])
    )
    ratio = float(rng.lognormal(mean=0.0, sigma=sigma))
    return fastest_iteration_time * min(max(ratio, 1.0), max_ratio)
