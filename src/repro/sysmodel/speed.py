"""Dynamic per-client compute-speed traces.

The paper emulates *dynamicity* (§5.1) by toggling every client between a
fast and a slow mode: fast/slow period durations are drawn from Γ(2, 40) and
Γ(2, 6) seconds respectively, and the slow-mode slowdown ratio is drawn from
U(1, 5). We reproduce that generator exactly, but as a *simulated-time*
trace instead of injected sleeps: a client's instantaneous processing rate
is ``base_rate / slowdown(t)``, and compute durations are obtained by
integrating the rate across mode segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SpeedTrace", "GAMMA_FAST", "GAMMA_SLOW", "SLOWDOWN_RANGE"]

# Paper §5.1: Γ(shape=2, scale=40) fast periods, Γ(2, 6) slow periods,
# slowdown ~ U(1, 5).
GAMMA_FAST: tuple[float, float] = (2.0, 40.0)
GAMMA_SLOW: tuple[float, float] = (2.0, 6.0)
SLOWDOWN_RANGE: tuple[float, float] = (1.0, 5.0)


@dataclass
class _Segment:
    start: float
    end: float
    slowdown: float


class SpeedTrace:
    """Lazy fast/slow mode trace for one client.

    Parameters
    ----------
    base_iteration_time:
        Seconds per local iteration at full (fast-mode) speed. Encodes the
        client's *static* heterogeneity (see
        :mod:`repro.sysmodel.heterogeneity`).
    seed:
        Trace randomness; two clients with different seeds toggle
        independently.
    dynamic:
        When ``False`` the client never slows down (used for the
        homogeneous-resource ablations).
    """

    def __init__(
        self,
        base_iteration_time: float,
        *,
        seed: int = 0,
        dynamic: bool = True,
        gamma_fast: tuple[float, float] = GAMMA_FAST,
        gamma_slow: tuple[float, float] = GAMMA_SLOW,
        slowdown_range: tuple[float, float] = SLOWDOWN_RANGE,
    ) -> None:
        if base_iteration_time <= 0:
            raise ValueError("base_iteration_time must be positive")
        self.base_iteration_time = float(base_iteration_time)
        self.dynamic = dynamic
        self._rng = np.random.default_rng(seed)
        self._gamma_fast = gamma_fast
        self._gamma_slow = gamma_slow
        self._slowdown_range = slowdown_range
        self._segments: list[_Segment] = []
        self._horizon = 0.0
        self._next_fast = True  # first segment is a fast period

    # ------------------------------------------------------------------
    def _extend_to(self, t: float) -> None:
        """Generate mode segments lazily until the trace covers time ``t``."""
        while self._horizon <= t:
            if self._next_fast:
                shape, scale = self._gamma_fast
                slowdown = 1.0
            else:
                shape, scale = self._gamma_slow
                lo, hi = self._slowdown_range
                slowdown = float(self._rng.uniform(lo, hi))
            duration = float(self._rng.gamma(shape, scale))
            duration = max(duration, 1e-6)  # guard degenerate zero draws
            self._segments.append(
                _Segment(self._horizon, self._horizon + duration, slowdown)
            )
            self._horizon += duration
            self._next_fast = not self._next_fast

    def _segment_at(self, t: float) -> _Segment:
        self._extend_to(t)
        # Binary search over segment starts; traces are append-only so the
        # list is sorted by construction.
        lo, hi = 0, len(self._segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._segments[mid].end <= t:
                lo = mid + 1
            else:
                hi = mid
        return self._segments[lo]

    # ------------------------------------------------------------------
    def slowdown_at(self, t: float) -> float:
        """Instantaneous slowdown factor (1.0 = full speed)."""
        if t < 0:
            raise ValueError("time must be non-negative")
        if not self.dynamic:
            return 1.0
        return self._segment_at(t).slowdown

    def iteration_finish_time(self, start: float, iterations: float = 1) -> float:
        """Wall-clock time at which ``iterations`` more local iterations
        complete if compute starts at ``start``.

        Fractional iteration counts are allowed (a half-batch iteration is
        half the work — used by the intra-round batch-adaptation extension).
        """
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        return self.work_finish_time(start, iterations * self.base_iteration_time)

    def work_finish_time(self, start: float, work_seconds: float) -> float:
        """Finish time for ``work_seconds`` of fast-equivalent compute.

        Work is integrated across mode segments: a segment with slowdown
        ``s`` processes fast-equivalent work at rate ``1/s``.
        """
        if work_seconds < 0:
            raise ValueError("work_seconds must be non-negative")
        if start < 0:
            raise ValueError("start must be non-negative")
        remaining = work_seconds
        t = start
        if not self.dynamic:
            return t + remaining
        while remaining > 1e-12:
            seg = self._segment_at(t)
            seg_wall = seg.end - t
            seg_work = seg_wall / seg.slowdown  # fast-equivalent seconds available
            if seg_work >= remaining:
                return t + remaining * seg.slowdown
            remaining -= seg_work
            t = seg.end
        return t

    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Capture every mutable field: the lazily generated mode segments,
        the generation horizon/phase, and the exact RNG stream position.

        A trace restored from this snapshot continues generating the same
        segment sequence an uninterrupted trace would — the checkpoint/
        resume subsystem (:mod:`repro.persist`) relies on this for its
        bitwise-identity guarantee (property-tested in
        ``tests/test_sysmodel.py``).
        """
        segments = np.array(
            [[s.start, s.end, s.slowdown] for s in self._segments],
            dtype=np.float64,
        ).reshape(-1, 3)
        return {
            "rng": self._rng.bit_generator.state,
            "segments": segments,
            "horizon": float(self._horizon),
            "next_fast": bool(self._next_fast),
        }

    def restore_state(self, snapshot: dict) -> None:
        """Inverse of :meth:`snapshot_state` (static config is untouched)."""
        self._rng.bit_generator.state = snapshot["rng"]
        segments = np.asarray(snapshot["segments"], dtype=np.float64).reshape(-1, 3)
        self._segments = [
            _Segment(float(s), float(e), float(d)) for s, e, d in segments
        ]
        self._horizon = float(snapshot["horizon"])
        self._next_fast = bool(snapshot["next_fast"])

    def average_iteration_time(self, start: float, iterations: int) -> float:
        """Mean wall-clock seconds per iteration over a window (used by
        clients to estimate their own pace when reporting to the server)."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        finish = self.iteration_finish_time(start, iterations)
        return (finish - start) / iterations
