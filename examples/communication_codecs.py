#!/usr/bin/env python3
"""Communication baselines vs FedCA — the §2.2 prior art, head to head.

The paper positions quantization and sparsification as the classical
*server-autocratic* answers to the communication bottleneck. This example
runs FedAvg, FedAvg+8-bit QSGD quantization, FedAvg+top-10 % sparsification
(with error feedback) and FedCA on the CNN workload, then compares bytes on
the wire, per-round time and time-to-accuracy.

The punchline matches the paper's framing: codecs shrink bytes (and help
when the link is the bottleneck) but do nothing about stragglers, while
FedCA attacks both ends — and the two are orthogonal, so a production
system could stack them.

Run:  python examples/communication_codecs.py
"""

from __future__ import annotations

from repro.algorithms import build_strategy, fedavg_quantized, fedavg_topk
from repro.core import FedCAConfig
from repro.experiments import get_workload, make_environment


def main() -> None:
    cfg = get_workload("cnn", scale="micro")
    opt = cfg.optimizer_spec()
    contenders = [
        build_strategy("fedavg", opt),
        fedavg_quantized(opt, bits=8),
        fedavg_topk(opt, fraction=0.1),
        build_strategy(
            "fedca", opt,
            fedca_config=FedCAConfig(profile_every=cfg.fedca_profile_every),
        ),
    ]

    print(f"{'scheme':14s} {'round(s)':>9s} {'MB sent':>8s} {'target hit':>18s}")
    for strategy in contenders:
        sim = make_environment(cfg, strategy, seed=11)
        hist = sim.run(cfg.default_rounds, target_accuracy=cfg.target_accuracy)
        total_mb = sum(r.total_bytes for r in hist.records) / 1e6
        tta = hist.time_to_accuracy(cfg.target_accuracy)
        hit = f"{tta[0]:7.1f}s / {tta[1]:3d} rounds" if tta else "not reached"
        print(
            f"{strategy.name:14s} {hist.mean_round_time():9.2f} "
            f"{total_mb:8.2f} {hit:>18s}"
        )


if __name__ == "__main__":
    main()
