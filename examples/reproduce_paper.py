#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Runs the full experiment harness (micro scale by default) and prints each
artefact in order: Figs. 2–5 (motivation/profiling), Table 1 + Fig. 7
(end-to-end), Fig. 8 (behaviour CDFs), Fig. 9 (ablation), Fig. 10
(sensitivity) and the §5.5 overhead accounting.

Run:  python examples/reproduce_paper.py [--scale micro|small] [--quick]

``--quick`` restricts the model set and round counts so the whole script
finishes in about a minute; the default micro run takes several minutes on
one CPU core.
"""

from __future__ import annotations

import argparse
import time

import repro.experiments as ex


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="micro", choices=["micro", "small"])
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()

    models = ("cnn",) if args.quick else ("cnn", "lstm", "wrn")
    two_models = ("cnn",) if args.quick else ("cnn", "lstm")
    rounds = 10 if args.quick else None
    t0 = time.time()

    def banner(label: str) -> None:
        print(f"\n{'=' * 72}\n{label}  [t+{time.time() - t0:.0f}s]\n{'=' * 72}")

    banner("Fig. 2 — whole-model progress curves")
    print(ex.format_fig2(ex.run_fig2(models=models, scale=args.scale)))

    banner("Fig. 3 — per-layer progress curves")
    print(ex.format_fig3(ex.run_fig3(models=models, scale=args.scale)))

    banner("Fig. 4 — cross-round curve similarity")
    print(ex.format_fig4(ex.run_fig4(model="cnn", scale=args.scale)))

    banner("Fig. 5 — sampled vs full profiling")
    print(ex.format_fig5(ex.run_fig5(models=models, scale=args.scale)))

    banner("Table 1 + Fig. 7 — end-to-end comparison")
    t1 = ex.run_table1(models=models, scale=args.scale, rounds=rounds)
    print(ex.format_table1(t1))
    print()
    print(ex.format_fig7(t1))

    banner("Fig. 8 — FedCA behaviour CDFs")
    print(ex.format_fig8(ex.run_fig8(model="cnn", scale=args.scale, rounds=rounds)))

    banner("Fig. 9 — ablation study")
    print(ex.format_fig9(ex.run_fig9(models=two_models, scale=args.scale, rounds=rounds)))

    banner("Fig. 10 — sensitivity analysis")
    print(ex.format_fig10(ex.run_fig10(model="cnn", scale=args.scale, rounds=rounds)))

    banner("§5.5 — profiling overhead (micro + paper-scale architectures)")
    print(ex.format_overhead(ex.run_overhead()))
    print()
    print(ex.format_overhead(ex.run_overhead(paper_arch=True)))

    print(f"\nDone in {time.time() - t0:.0f}s.")


if __name__ == "__main__":
    main()
