#!/usr/bin/env python3
"""Fig. 1 companion — anatomy of the statistical-progress metric.

Reproduces the paper's toy illustration: during a local round the early
iterations take large, consistent steps toward the client's local optimum,
so the accumulated gradient after a few iterations is already close
(in the Eq. 1 sense) to the full-round accumulated gradient.

The example then probes a *real* local round of the CNN workload and shows
the same anatomy: per-iteration step magnitudes shrink while the progress
metric saturates, and individual layers saturate at different iterations.

Run:  python examples/progress_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import build_strategy
from repro.core import statistical_progress
from repro.experiments import get_workload, make_environment, probe_curves


def toy_example() -> None:
    """A 2-D gradient walk like the paper's Fig. 1: 7 steps toward an
    optimum, early steps long and aligned, later steps short and noisy."""
    rng = np.random.default_rng(0)
    steps = []
    direction = np.array([1.0, 0.6])
    for i in range(7):
        scale = 1.0 / (i + 1)  # diminishing step sizes
        noise = rng.normal(scale=0.25 * (i + 1) / 7, size=2)
        steps.append(scale * direction + noise)
    cumulative = np.cumsum(steps, axis=0)
    g_k = cumulative[-1]
    print("Toy round (7 iterations):")
    for i, g_i in enumerate(cumulative, start=1):
        p = statistical_progress(g_i, g_k)
        print(f"  after iter {i}: |G_i|={np.linalg.norm(g_i):.3f}  P_i={p:.3f}")
    print("  -> P_3 is already close to 1: 3 of 7 iterations capture most of the round.\n")


def real_round() -> None:
    cfg = get_workload("cnn", scale="micro")
    sim = make_environment(
        cfg, build_strategy("fedavg", cfg.optimizer_spec()), seed=0
    )
    for _ in range(4):  # move past the chaotic first rounds
        sim.run_round()
    probe = probe_curves(
        model_fn=cfg.model_fn(),
        shard=sim.clients[0].shard,
        global_state=sim.global_state,
        optimizer=cfg.optimizer_spec(),
        iterations=cfg.local_iterations,
        batch_size=cfg.batch_size,
        seed=0,
    )
    print("Real CNN round (client 0, round 5):")
    print("  whole-model P_tau:",
          " ".join(f"{p:.2f}" for p in probe.model_curve))
    half = cfg.local_iterations // 2
    print(f"  P at K/2 = {probe.model_curve[half - 1]:.3f} — most of the round's "
          "statistical value arrives early.")
    print("  per-layer P at K/2:")
    for name, curve in sorted(probe.layer_curves.items()):
        print(f"    {name:22s} {curve[half - 1]:.3f}")


def main() -> None:
    toy_example()
    real_round()


if __name__ == "__main__":
    main()
