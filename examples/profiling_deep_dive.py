#!/usr/bin/env python3
"""Periodical-sampling profiler — an API tour (paper §4.1).

Walks through FedCA's profiling machinery on a live CNN client:

1. builds the intra-layer sampler and shows the min(50 %, 100) rule at work
   per layer, plus the memory budget versus naive full profiling;
2. records an anchor round and prints the resulting whole-model and
   per-layer progress curves;
3. derives the round's decisions from those curves: each layer's eager-
   transmission trigger iteration (Eq. 5) and the early-stop utility trace
   (Eqs. 2–4) under an example deadline.

Run:  python examples/profiling_deep_dive.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import build_strategy
from repro.core import (
    AnchorRecorder,
    EagerSchedule,
    FedCAConfig,
    LayerSampler,
    marginal_benefit,
    marginal_cost,
)
from repro.data import BatchStream
from repro.experiments import get_workload, make_environment
from repro.nn import softmax_cross_entropy


def main() -> None:
    cfg = get_workload("cnn", scale="micro")
    sim = make_environment(
        cfg, build_strategy("fedavg", cfg.optimizer_spec()), seed=1
    )
    for _ in range(3):  # move past the chaotic first rounds
        sim.run_round()

    model = cfg.model_fn()()
    model.load_state_dict(sim.global_state)
    fedca_cfg = FedCAConfig()

    # 1. The sampler and its memory budget. ------------------------------
    sampler = LayerSampler.for_model(
        model, fraction=fedca_cfg.sample_fraction, cap=fedca_cfg.sample_cap, seed=0
    )
    print("Intra-layer sampling (min(50%, 100) scalars per layer):")
    for name, p in model.named_parameters():
        print(f"  {name:14s} {p.size:6d} params -> {sampler.indices[name].size:3d} sampled")
    k = cfg.local_iterations
    print(
        f"  profiling memory for one K={k} anchor round: "
        f"{sampler.snapshot_bytes(k) / 1e3:.1f} KB sampled vs "
        f"{model.num_parameters() * k * 4 / 1e3:.1f} KB full\n"
    )

    # 2. Record an anchor round. -----------------------------------------
    shard = sim.clients[0].shard
    stream = BatchStream(shard, cfg.batch_size, seed=7)
    opt = cfg.optimizer_spec().build(model)
    anchor_state = {n: p.data.copy() for n, p in model.named_parameters()}
    params = dict(model.named_parameters())
    recorder = AnchorRecorder(sampler)
    for _ in range(k):
        x, y = stream.next_batch()
        _, grad = softmax_cross_entropy(model(x), y)
        model.zero_grad()
        model.backward(grad)
        opt.step()
        recorder.record({n: p.data for n, p in params.items()}, anchor_state)
    curves = recorder.finalize(round_index=3)

    print("Whole-model progress curve P_tau:")
    print("  " + " ".join(f"{p:.2f}" for p in curves.model_curve) + "\n")

    # 3. The decisions the curves drive. ----------------------------------
    schedule = EagerSchedule(curves, fedca_cfg.eager_threshold)
    print(f"Eager-transmission triggers (T_e = {fedca_cfg.eager_threshold}):")
    for name in sampler.indices:
        trig = schedule.triggers.get(name)
        print(f"  {name:14s} -> " + (f"iteration {trig}" if trig else "never"))

    deadline = k * 0.6 * 0.05  # an example compute deadline
    print(f"\nNet-benefit trace under a {deadline:.2f}s deadline "
          f"(0.05 s/iteration pace, beta = {fedca_cfg.beta}):")
    for tau in range(1, k + 1):
        elapsed = tau * 0.05
        b = marginal_benefit(curves, tau)
        c = marginal_cost(elapsed, deadline, fedca_cfg.beta)
        marker = "  <- stop" if b - c < 0 else ""
        print(f"  tau={tau:2d}  b={b:7.4f}  c={c:7.4f}  n={b - c:+7.4f}{marker}")
        if b - c < 0:
            break


if __name__ == "__main__":
    main()
