#!/usr/bin/env python3
"""Fig. 6 companion — eager-transmission timeline on the client uplink.

Runs one FedCA round on the WRN workload (where communication is the
largest round-time fraction) and prints the uplink schedule of a single
client: which layers were eagerly transmitted at which iteration, how their
uploads overlapped local compute, which layers were retransmitted at round
end, and the resulting critical-path saving versus a single end-of-round
upload.

Run:  python examples/eager_timeline.py
"""

from __future__ import annotations

from repro.algorithms import build_strategy
from repro.experiments import get_workload, make_environment


def main() -> None:
    cfg = get_workload("wrn", scale="micro")
    strategy = build_strategy("fedca", cfg.optimizer_spec())
    sim = make_environment(cfg, strategy, seed=3)

    # Round 0 is the anchor (full profiling, no optimisation); round 1 is the
    # first optimised round.
    sim.run_round()
    record = sim.run_round()

    cid = record.collected_clients[0]
    client = sim.clients[cid]
    events = record.client_events[cid]
    print(f"Client {cid}, round 1 (optimised):")
    print(f"  iterations run: {events['iterations_run']} / {cfg.local_iterations}"
          + (f" (early stop at {events['early_stop_iteration']})"
             if events["early_stop_iteration"] else ""))

    print("\n  uplink schedule (simulated seconds, relative to compute start):")
    base = None
    for tx in client.uplink.log:
        if base is None:
            base = tx.submit_time
        print(
            f"    {tx.label:34s} submit={tx.submit_time - base:7.3f} "
            f"start={tx.start_time - base:7.3f} finish={tx.finish_time - base:7.3f} "
            f"({tx.nbytes} B)"
        )

    retrans = events["retransmitted"]
    print(f"\n  eagerly transmitted layers: {len(events['eager'])}")
    print(f"  retransmitted (Eq. 6 deviation): {len(retrans)}"
          + (f" -> {retrans}" if retrans else ""))

    # Compare against the no-overlap alternative: everything at round end.
    full_upload = client.link.upload_seconds(client.model_bytes)
    last = client.uplink.log[-1]
    compute_end = last.submit_time if last.label == "tail" else last.finish_time
    overlap_finish = client.uplink.busy_until
    print(
        f"\n  single end-of-round upload would finish at "
        f"{compute_end - base + full_upload:.3f}; with eager overlap the last "
        f"byte left at {overlap_finish - base:.3f}."
    )


if __name__ == "__main__":
    main()
