#!/usr/bin/env python3
"""Straggler rescue — intra-round autonomy under a sudden slowdown.

The paper's motivating scenario (§1): a phone participating in FL slows
down mid-round when the user opens another app. Server-autocratic schemes
(FedAvg, and even FedAda's pre-round budget) cannot react; FedCA's client
notices its elapsed time climbing against the deadline and stops early.

This example constructs a 6-client LSTM environment in which client 5 is
hit by heavy mid-round slowdowns, then contrasts how long each scheme's
rounds are gated by that client.

Run:  python examples/straggler_rescue.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import OptimizerSpec, build_strategy
from repro.data import dirichlet_partition, make_workload_data
from repro.nn import build_model
from repro.runtime import FederatedSimulator
from repro.sysmodel import LinkModel


def build_sim(scheme: str):
    train, test = make_workload_data("lstm", num_samples=1200, seed=7)
    parts = dirichlet_partition(train, 6, alpha=0.3, seed=8)
    shards = [train.subset(p) for p in parts]
    # Clients 0-4 are uniform and fast; client 5 has the same base speed but
    # will suffer long slow periods (dynamics below).
    base_times = [0.02] * 6
    sim = FederatedSimulator(
        model_fn=lambda: build_model("lstm", rng=np.random.default_rng(7)),
        strategy=build_strategy(scheme, OptimizerSpec(lr=0.1, weight_decay=0.01)),
        shards=shards,
        test_set=test,
        base_iteration_times=base_times,
        batch_size=16,
        local_iterations=25,
        aggregation_fraction=1.0,  # wait for everyone: stragglers fully felt
        link_fn=lambda cid: LinkModel(uplink_mbps=1.0, downlink_mbps=1.0),
        dynamic=False,  # we inject dynamics manually below
        seed=9,
    )
    # Hand-craft client 5's dynamics: short fast bursts, long 5x slowdowns.
    from repro.sysmodel import SpeedTrace

    sim.clients[5].trace = SpeedTrace(
        0.02,
        seed=123,
        dynamic=True,
        gamma_fast=(2.0, 0.2),
        gamma_slow=(2.0, 2.0),
        slowdown_range=(4.0, 5.0),
    )
    return sim


def main() -> None:
    for scheme in ("fedavg", "fedada", "fedca"):
        sim = build_sim(scheme)
        hist = sim.run(12)
        # How often was the slow client the round's last finisher?
        gated = sum(
            1
            for rec in hist.records
            if rec.collected_clients and rec.collected_clients[-1] == 5
        )
        iters_5 = [
            rec.client_events[5]["iterations_run"]
            for rec in hist.records
            if 5 in rec.client_events
        ]
        print(
            f"{scheme:7s}: mean round {hist.mean_round_time():6.2f}s, "
            f"final acc {hist.final_accuracy:.3f}, "
            f"client-5 gated {gated}/12 rounds, "
            f"client-5 iterations per round {iters_5}"
        )
    print(
        "\nFedCA's client 5 cuts its own workload the moment a slowdown makes "
        "further iterations poor value, so the whole round no longer waits on it."
    )


if __name__ == "__main__":
    main()
