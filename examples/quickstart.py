#!/usr/bin/env python3
"""Quickstart — train one federated model under FedCA and FedAvg.

Builds the micro-scale CNN workload (synthetic non-IID CIFAR-10 stand-in,
8 heterogeneous dynamic clients, 1 Mbps links), trains it under FedAvg and
then under FedCA, and prints the efficiency comparison.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.algorithms import build_strategy
from repro.experiments import get_workload, make_environment


def main() -> None:
    cfg = get_workload("cnn", scale="micro")
    print(
        f"Workload: {cfg.name} — {cfg.num_clients} clients, "
        f"K={cfg.local_iterations} local iterations/round, "
        f"target accuracy {cfg.target_accuracy}"
    )

    for scheme in ("fedavg", "fedca"):
        strategy = build_strategy(scheme, cfg.optimizer_spec())
        sim = make_environment(cfg, strategy, seed=42)
        history = sim.run(cfg.default_rounds, target_accuracy=cfg.target_accuracy)
        tta = history.time_to_accuracy(cfg.target_accuracy)
        reached = (
            f"target in {tta[1]} rounds / {tta[0]:.1f} simulated seconds"
            if tta
            else f"target not reached (final acc {history.final_accuracy:.3f})"
        )
        print(
            f"{strategy.name:8s}: mean round {history.mean_round_time():.2f}s, "
            f"{reached}"
        )

    print(
        "\nFedCA trades a few extra rounds for much cheaper rounds "
        "(early stopping + eager transmission), reducing total time."
    )


if __name__ == "__main__":
    main()
